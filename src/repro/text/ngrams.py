"""n-gram language models with Laplace smoothing.

These implement the paper's *format models* (§4.1, Appendix A.1): a
per-attribute distribution over character 3-grams (and over symbol-class
3-grams), where a cell's feature is the frequency of its *least frequent*
n-gram.  Rare formats — a stray ``x`` inside a zip code — surface as a low
minimum-probability, which is exactly the signal the classifier consumes.
"""

from __future__ import annotations

from typing import Iterable

from repro.text.tokenize import symbolic_signature

#: Padding characters so that values shorter than ``n`` still produce a gram.
_BOS = "\x02"
_EOS = "\x03"


def extract_ngrams(value: str, n: int) -> list[str]:
    """All ``n``-grams of ``value`` after BOS/EOS padding.

    Padding guarantees at least one gram for every value, including the empty
    string, so every cell receives a well-defined format feature.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    padded = _BOS + value + _EOS
    if len(padded) < n:
        padded = padded + _EOS * (n - len(padded))
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


class NGramModel:
    """Character n-gram model over one attribute with Laplace smoothing.

    The smoothing universe follows the paper: all printable-ASCII n-grams
    (we use the count of *distinct observed* grams plus an ASCII-sized prior
    universe, which keeps probabilities comparable across attributes without
    materialising 128**n entries).
    """

    def __init__(self, n: int = 3, alpha: float = 1.0, universe_size: int | None = None):
        if alpha <= 0:
            raise ValueError("Laplace alpha must be positive")
        self.n = n
        self.alpha = alpha
        self._counts: dict[str, int] = {}
        self._total = 0
        # Default universe: printable ASCII (95 chars) ** n, capped to avoid
        # float underflow dominating every probability for large n.
        self._universe = universe_size if universe_size is not None else min(95**n, 10_000_000)

    def fit(self, values: Iterable[str]) -> "NGramModel":
        """Accumulate n-gram counts from an attribute's values."""
        for value in values:
            for gram in extract_ngrams(self._normalize(value), self.n):
                self._counts[gram] = self._counts.get(gram, 0) + 1
                self._total += 1
        return self

    def _normalize(self, value: str) -> str:
        return value

    @property
    def vocabulary_size(self) -> int:
        return len(self._counts)

    def probability(self, gram: str) -> float:
        """Laplace-smoothed probability of one n-gram."""
        count = self._counts.get(gram, 0)
        return (count + self.alpha) / (self._total + self.alpha * self._universe)

    def min_gram_probability(self, value: str) -> float:
        """Probability of the least likely n-gram in ``value``.

        This is the scalar feature exported to the representation model: the
        paper aggregates per-cell gram probabilities by taking the least-k
        probable (k=1 in Table 7).
        """
        grams = extract_ngrams(self._normalize(value), self.n)
        return min(self.probability(g) for g in grams)

    def to_state(self) -> dict:
        """Serialisable state: config plus the raw gram counts."""
        return {
            "n": self.n,
            "alpha": self.alpha,
            "universe": self._universe,
            "counts": dict(self._counts),
            "total": self._total,
        }

    @classmethod
    def from_state(cls, state: dict) -> "NGramModel":
        """Rebuild a fitted model from :meth:`to_state` output."""
        model = cls(n=state["n"], alpha=state["alpha"], universe_size=state["universe"])
        model._counts = {str(k): int(v) for k, v in state["counts"].items()}
        model._total = int(state["total"])
        return model

    def least_probable_grams(self, value: str, k: int) -> list[float]:
        """Probabilities of the ``k`` least probable n-grams, ascending.

        Padded by repeating the largest returned value when a value has fewer
        than ``k`` grams, so the feature block has fixed width.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        probs = sorted(
            self.probability(g) for g in extract_ngrams(self._normalize(value), self.n)
        )
        probs = probs[:k]
        while len(probs) < k:
            probs.append(probs[-1])
        return probs


class SymbolicNGramModel(NGramModel):
    """n-gram model over the symbol-class signature of values.

    Runs the same machinery as :class:`NGramModel` but on the coarse alphabet
    ``{C, N, S}``, capturing the *shape* of a value (digits vs letters vs
    punctuation) independently of the concrete characters.
    """

    def __init__(self, n: int = 3, alpha: float = 1.0):
        # Universe: the 3-symbol alphabet plus BOS/EOS markers → 5**n grams.
        super().__init__(n=n, alpha=alpha, universe_size=5**n)

    @classmethod
    def from_state(cls, state: dict) -> "SymbolicNGramModel":
        model = cls(n=state["n"], alpha=state["alpha"])
        model._counts = {str(k): int(v) for k, v in state["counts"].items()}
        model._total = int(state["total"])
        return model

    def _normalize(self, value: str) -> str:
        return symbolic_signature(value)
