"""String similarity primitives behind Algorithm 1 (transformation learning).

The paper's transformation learner is "similar to the Ratcliff–Obershelp
pattern recognition algorithm" [51]: recurse around the longest common
substring and compare string halves via the Ratcliff–Obershelp similarity
``2*C / S`` (C = common characters, S = summed lengths).
"""

from __future__ import annotations


def longest_common_substring(a: str, b: str) -> tuple[int, int, int]:
    """Longest common substring of ``a`` and ``b``.

    Returns ``(start_a, start_b, length)``; ``length == 0`` when the strings
    share no characters.  Ties resolve to the earliest occurrence in ``a``
    then in ``b`` (deterministic, which keeps transformation learning stable
    across runs).
    """
    if not a or not b:
        return (0, 0, 0)
    # Classic O(len(a)*len(b)) rolling-row DP.
    best_len = 0
    best_a = 0
    best_b = 0
    prev = [0] * (len(b) + 1)
    for i in range(1, len(a) + 1):
        curr = [0] * (len(b) + 1)
        ai = a[i - 1]
        for j in range(1, len(b) + 1):
            if ai == b[j - 1]:
                length = prev[j - 1] + 1
                curr[j] = length
                if length > best_len:
                    best_len = length
                    best_a = i - length
                    best_b = j - length
        prev = curr
    return (best_a, best_b, best_len)


def _common_chars(a: str, b: str) -> int:
    """Number of matching characters under multiset intersection."""
    counts: dict[str, int] = {}
    for ch in a:
        counts[ch] = counts.get(ch, 0) + 1
    common = 0
    for ch in b:
        remaining = counts.get(ch, 0)
        if remaining:
            counts[ch] = remaining - 1
            common += 1
    return common


def sequence_similarity(a: str, b: str) -> float:
    """Ratcliff–Obershelp style similarity ``2*C/S`` in ``[0, 1]``.

    ``C`` is the multiset character overlap and ``S`` the total length; two
    empty strings are defined as identical (similarity 1).
    """
    total = len(a) + len(b)
    if total == 0:
        return 1.0
    return 2.0 * _common_chars(a, b) / total
