"""Tokenisers for the three views HoloDetect takes of a cell value.

The paper embeds a cell at the *character* level, the *word* level, and maps
each character to a coarse symbol class {Character, Number, Symbol} for the
symbolic format model (Appendix A.1, Table 7).
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

#: Symbol-class alphabet of the symbolic 3-gram model.
CHAR_CLASS = "C"
NUM_CLASS = "N"
SYM_CLASS = "S"


def char_tokens(value: str) -> list[str]:
    """A cell value as a character sequence."""
    return list(value)


def word_tokens(value: str) -> list[str]:
    """Alphanumeric word tokens of a cell value, lowercased.

    Punctuation separates tokens; an empty value yields no tokens.
    """
    return [m.group(0).lower() for m in _WORD_RE.finditer(value)]


def symbolic_signature(value: str) -> str:
    """Map every character to its class: letter→C, digit→N, other→S.

    ``"60612-A"`` → ``"NNNNNSC"``.  The symbolic 3-gram format model runs over
    this signature instead of the raw characters.
    """
    out = []
    for ch in value:
        if ch.isalpha():
            out.append(CHAR_CLASS)
        elif ch.isdigit():
            out.append(NUM_CLASS)
        else:
            out.append(SYM_CLASS)
    return "".join(out)
