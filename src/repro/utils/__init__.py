"""Shared utilities: deterministic RNG handling and timing helpers."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer

__all__ = ["as_generator", "spawn_generators", "Timer"]
