"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
behaviour uniform and makes experiments reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded from entropy; an ``int`` seeds a fresh
    PCG64 stream; a generator is passed through unchanged so callers can share
    a stream across components.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected int, Generator, or None, got {type(rng)!r}")


def spawn_generators(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a parent seed or stream.

    Used by the experiment runner to give each repetition its own stream while
    keeping the whole sweep reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
