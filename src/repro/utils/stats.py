"""Categorical association statistics shared by several detectors.

Both the correlation-based outlier baseline and the Naïve Bayes
weak-supervision model need to know which attribute pairs actually carry
information about each other; normalised mutual information is the measure
used throughout.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


def normalized_mutual_information(
    col_a: list[str], col_b: list[str], bias_corrected: bool = False
) -> float:
    """NMI between two categorical columns, in [0, 1].

    0 for independent (or constant) columns, 1 for a perfect bijection.

    ``bias_corrected`` subtracts the Miller–Madow finite-sample bias
    ``(|A|-1)(|B|-1) / 2n`` from the raw MI before normalising.  Two
    high-cardinality columns have large *raw* MI purely by chance (every
    value pair is nearly unique); callers that use NMI to decide whether an
    attribute genuinely predicts another should enable this.
    """
    n = len(col_a)
    if n == 0 or len(col_b) != n:
        raise ValueError("columns must be equal-length and non-empty")
    counts_a: dict[str, int] = defaultdict(int)
    counts_b: dict[str, int] = defaultdict(int)
    joint: dict[tuple[str, str], int] = defaultdict(int)
    for a, b in zip(col_a, col_b):
        counts_a[a] += 1
        counts_b[b] += 1
        joint[(a, b)] += 1
    h_a = -sum((c / n) * np.log(c / n) for c in counts_a.values())
    h_b = -sum((c / n) * np.log(c / n) for c in counts_b.values())
    if h_a == 0 or h_b == 0:
        return 0.0
    mi = 0.0
    for (a, b), c in joint.items():
        p_ab = c / n
        mi += p_ab * np.log(p_ab / ((counts_a[a] / n) * (counts_b[b] / n)))
    if bias_corrected:
        mi -= (len(counts_a) - 1) * (len(counts_b) - 1) / (2.0 * n)
    return float(max(mi, 0.0) / np.sqrt(h_a * h_b))
