"""Shared fixtures: small deterministic datasets used across test modules."""

from __future__ import annotations

import pytest

from repro.constraints import functional_dependency
from repro.dataset import Dataset, GroundTruth, TrainingSet
from repro.dataset.table import Cell


@pytest.fixture
def zip_dataset() -> Dataset:
    """A small relation with a zip -> city FD and one injected typo."""
    return Dataset.from_rows(
        ["zip", "city", "state"],
        [
            ["60612", "Chicago", "IL"],
            ["60612", "Cicago", "IL"],  # typo: violates zip -> city
            ["60614", "Chicago", "IL"],
            ["60614", "Chicago", "IL"],
            ["02139", "Cambridge", "MA"],
            ["02139", "Cambridge", "MA"],
        ],
    )


@pytest.fixture
def zip_clean() -> Dataset:
    return Dataset.from_rows(
        ["zip", "city", "state"],
        [
            ["60612", "Chicago", "IL"],
            ["60612", "Chicago", "IL"],
            ["60614", "Chicago", "IL"],
            ["60614", "Chicago", "IL"],
            ["02139", "Cambridge", "MA"],
            ["02139", "Cambridge", "MA"],
        ],
    )


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden fixtures with freshly computed metrics",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite golden fixtures instead of asserting."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def zip_truth(zip_clean) -> GroundTruth:
    return GroundTruth.from_clean_dataset(zip_clean)


@pytest.fixture
def zip_fd():
    return functional_dependency("zip", "city")


@pytest.fixture
def zip_training(zip_dataset, zip_truth) -> TrainingSet:
    """Labels for every cell of the zip dataset."""
    return TrainingSet.from_cells(list(zip_dataset.cells()), zip_dataset, zip_truth)


@pytest.fixture
def typo_cell() -> Cell:
    return Cell(1, "city")


@pytest.fixture(scope="session")
def tiny_bundle():
    """A small hospital bundle shared by integration tests (session-scoped:
    generation plus detector fitting is the expensive part of the suite)."""
    from repro.data import load_dataset

    return load_dataset("hospital", num_rows=200, seed=7)


@pytest.fixture(scope="session")
def served_world(tmp_path_factory):
    """One fitted detector saved twice (two specs → two fingerprints) plus
    its source bundle — the shared world of the serving test suites.

    Fitting is the expensive part, so it happens once per session; the
    second save reuses the fitted state under a different spec (predict-time
    state is identical, only fit-time hyperparameters differ), which is all
    the registry/LRU tests need from a "second model".
    """
    from types import SimpleNamespace

    from repro import DetectorSpec, HoloDetect, load_dataset, make_split
    from repro.persistence import save_detector

    bundle = load_dataset("hospital", num_rows=60, seed=11)
    split = make_split(bundle, 0.15, rng=0)
    spec = DetectorSpec.default(
        epochs=4, embedding_dim=8, min_training_steps=50, embedding_epochs=1
    )
    detector = HoloDetect.from_spec(spec)
    detector.fit(bundle.dirty, split.training, bundle.constraints)

    model_root = tmp_path_factory.mktemp("served-models")
    save_detector(detector, model_root / "alpha")
    spec_b = DetectorSpec.default(
        epochs=5, embedding_dim=8, min_training_steps=50, embedding_epochs=1
    )
    detector.spec = spec_b
    save_detector(detector, model_root / "beta")
    detector.spec = spec

    return SimpleNamespace(
        bundle=bundle,
        split=split,
        spec=spec,
        spec_b=spec_b,
        fingerprint=spec.fingerprint(),
        fingerprint_b=spec_b.fingerprint(),
        model_root=model_root,
        detector=detector,
    )
