"""Shared fixtures: small deterministic datasets used across test modules."""

from __future__ import annotations

import pytest

from repro.constraints import functional_dependency
from repro.dataset import Dataset, GroundTruth, TrainingSet
from repro.dataset.table import Cell


@pytest.fixture
def zip_dataset() -> Dataset:
    """A small relation with a zip -> city FD and one injected typo."""
    return Dataset.from_rows(
        ["zip", "city", "state"],
        [
            ["60612", "Chicago", "IL"],
            ["60612", "Cicago", "IL"],  # typo: violates zip -> city
            ["60614", "Chicago", "IL"],
            ["60614", "Chicago", "IL"],
            ["02139", "Cambridge", "MA"],
            ["02139", "Cambridge", "MA"],
        ],
    )


@pytest.fixture
def zip_clean() -> Dataset:
    return Dataset.from_rows(
        ["zip", "city", "state"],
        [
            ["60612", "Chicago", "IL"],
            ["60612", "Chicago", "IL"],
            ["60614", "Chicago", "IL"],
            ["60614", "Chicago", "IL"],
            ["02139", "Cambridge", "MA"],
            ["02139", "Cambridge", "MA"],
        ],
    )


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden fixtures with freshly computed metrics",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite golden fixtures instead of asserting."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def zip_truth(zip_clean) -> GroundTruth:
    return GroundTruth.from_clean_dataset(zip_clean)


@pytest.fixture
def zip_fd():
    return functional_dependency("zip", "city")


@pytest.fixture
def zip_training(zip_dataset, zip_truth) -> TrainingSet:
    """Labels for every cell of the zip dataset."""
    return TrainingSet.from_cells(list(zip_dataset.cells()), zip_dataset, zip_truth)


@pytest.fixture
def typo_cell() -> Cell:
    return Cell(1, "city")


@pytest.fixture(scope="session")
def tiny_bundle():
    """A small hospital bundle shared by integration tests (session-scoped:
    generation plus detector fitting is the expensive part of the suite)."""
    from repro.data import load_dataset

    return load_dataset("hospital", num_rows=200, seed=7)
