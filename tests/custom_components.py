"""User-defined components referenced by ``module:attr`` in registry tests.

This module deliberately lives *outside* ``repro`` — it stands in for a
user's own package, exercising the zero-repo-edits extension path: every
attribute here is reachable from specs and sweep files as
``"custom_components:<attr>"``.
"""

from __future__ import annotations

import numpy as np

from repro.errors.bart import ErrorProfile
from repro.features.base import CellBatch, FeatureContext, Featurizer


class ConstantFeaturizer(Featurizer):
    """A one-dimensional featurizer emitting a constant — the simplest
    possible custom representation model."""

    name = "constant"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self, value: float = 1.0):
        self.value = float(value)
        self._fitted = False

    def fit(self, dataset) -> "ConstantFeaturizer":
        self._fitted = True
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        return np.full((len(batch), 1), self.value)

    @property
    def dim(self) -> int:
        return 1


#: A pre-built (non-callable) component: referenced as
#: ``custom_components:PREBUILT_FEATURIZER`` and must take no parameters.
PREBUILT_FEATURIZER = ConstantFeaturizer(value=2.5)


def flag_nothing_method() -> object:
    """A custom MethodFn factory: predicts no errors at all."""

    def run(bundle, split, rng):
        return set()

    return run


def heavy_typos(error_rate: float = 0.2) -> ErrorProfile:
    """A custom error-profile factory."""
    return ErrorProfile(error_rate=error_rate, typo_fraction=1.0)


def slow_unique_flagger(delay: float = 0.0) -> object:
    """A deterministic but deliberately slow MethodFn factory.

    Sleeps ``delay`` seconds, then flags every test cell whose value is
    unique within its column — nontrivial, seed-independent predictions,
    which is exactly what the coordination tests need: scenarios that stay
    in flight long enough to observe (or ``SIGKILL``) a worker holding
    their lease, while the results stay bit-comparable across any mix of
    workers, hosts, and crash recoveries.
    """
    import time
    from collections import Counter

    def run(bundle, split, rng):
        if delay:
            time.sleep(delay)
        dirty = bundle.dirty
        counts = {a: Counter(dirty.column(a)) for a in dirty.schema.attributes}
        return {
            cell
            for cell in split.test_cells
            if counts[cell.attr][dirty.column(cell.attr)[cell.row]] == 1
        }

    return run


NOT_A_FEATURIZER = object()
