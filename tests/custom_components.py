"""User-defined components referenced by ``module:attr`` in registry tests.

This module deliberately lives *outside* ``repro`` — it stands in for a
user's own package, exercising the zero-repo-edits extension path: every
attribute here is reachable from specs and sweep files as
``"custom_components:<attr>"``.
"""

from __future__ import annotations

import numpy as np

from repro.errors.bart import ErrorProfile
from repro.features.base import CellBatch, FeatureContext, Featurizer


class ConstantFeaturizer(Featurizer):
    """A one-dimensional featurizer emitting a constant — the simplest
    possible custom representation model."""

    name = "constant"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self, value: float = 1.0):
        self.value = float(value)
        self._fitted = False

    def fit(self, dataset) -> "ConstantFeaturizer":
        self._fitted = True
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        return np.full((len(batch), 1), self.value)

    @property
    def dim(self) -> int:
        return 1


#: A pre-built (non-callable) component: referenced as
#: ``custom_components:PREBUILT_FEATURIZER`` and must take no parameters.
PREBUILT_FEATURIZER = ConstantFeaturizer(value=2.5)


def flag_nothing_method() -> object:
    """A custom MethodFn factory: predicts no errors at all."""

    def run(bundle, split, rng):
        return set()

    return run


def heavy_typos(error_rate: float = 0.2) -> ErrorProfile:
    """A custom error-profile factory."""
    return ErrorProfile(error_rate=error_rate, typo_fraction=1.0)


NOT_A_FEATURIZER = object()
