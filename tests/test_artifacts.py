"""Tests for the content-addressed fitted-artifact store (repro.artifacts).

Covers the ISSUE 5 acceptance surface: key stability under config dict
reordering (hypothesis), store round-trip through eviction and disk reload
with bit-identical predictions, corrupt/partial on-disk artifacts tolerated
as misses, and concurrent sweep workers sharing one store directory
producing metrics identical to a sequential cold run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifacts import (
    ArtifactStore,
    artifact_key,
    get_default_store,
    training_seed,
    use_store,
)
from repro.artifacts.keys import seed_material
from repro.core.detector import DetectionSession, DetectorConfig, HoloDetect
from repro.data import load_dataset
from repro.evaluation.matrix import ScenarioMatrix, run_matrix
from repro.evaluation.splits import make_split

#: Tiny but complete detector settings shared by the fit-path tests.
TINY = dict(epochs=2, embedding_dim=4, min_training_steps=20, seed=3)


@pytest.fixture(scope="module")
def small_bundle():
    return load_dataset("hospital", num_rows=60, seed=2)


@pytest.fixture(scope="module")
def small_split(small_bundle):
    return make_split(small_bundle, 0.15, rng=1)


def fit_and_predict(bundle, split, **config):
    detector = HoloDetect(DetectorConfig(**TINY, **config))
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    return detector, detector.predict()


# --------------------------------------------------------------------- #
# Key derivation
# --------------------------------------------------------------------- #

scalars = st.one_of(
    st.integers(-10, 10), st.text(max_size=8), st.booleans(), st.none()
)
configs = st.dictionaries(st.text(min_size=1, max_size=8), scalars, max_size=6)


class TestArtifactKeys:
    @given(config=configs)
    @settings(max_examples=50, deadline=None)
    def test_stable_under_config_reordering(self, config):
        reordered = dict(reversed(list(config.items())))
        assert artifact_key("k", "scope", config) == artifact_key(
            "k", "scope", reordered
        )

    def test_components_all_enter_the_key(self):
        base = artifact_key("kind", "scope", {"a": 1}, seed=0)
        assert artifact_key("other", "scope", {"a": 1}, seed=0) != base
        assert artifact_key("kind", "scope2", {"a": 1}, seed=0) != base
        assert artifact_key("kind", "scope", {"a": 2}, seed=0) != base
        assert artifact_key("kind", "scope", {"a": 1}, seed=1) != base

    def test_training_seed_deterministic_and_bounded(self):
        key = artifact_key("kind", "scope", {})
        assert training_seed(key) == training_seed(key)
        assert 0 <= training_seed(key) < 2**63

    def test_seed_material_coercion(self):
        assert seed_material(None) is None
        assert seed_material(7) == 7
        gen = np.random.default_rng(0)
        drawn = seed_material(gen)
        assert isinstance(drawn, int)
        # Drawing consumed exactly one integer from the stream.
        assert seed_material(np.random.default_rng(0)) == drawn
        with pytest.raises(TypeError):
            seed_material("not-an-rng")


# --------------------------------------------------------------------- #
# Store mechanics
# --------------------------------------------------------------------- #


class TestArtifactStore:
    def test_memory_round_trip_and_stats(self):
        store = ArtifactStore()
        assert store.get("k1") is None
        store.put("k1", {"x": 1, "arr": np.arange(3.0)})
        payload = store.get("k1")
        assert payload["x"] == 1
        np.testing.assert_array_equal(payload["arr"], np.arange(3.0))
        assert store.stats.misses == 1
        assert store.stats.memory_hits == 1
        assert store.stats.puts == 1

    def test_lru_eviction(self):
        store = ArtifactStore(max_entries=2)
        for i in range(3):
            store.put(f"k{i}", {"i": i})
        assert len(store) == 2
        assert store.stats.evictions == 1
        assert store.get("k0") is None  # evicted (memory-only store)
        assert store.get("k2")["i"] == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)

    def test_disk_round_trip_fresh_store(self, tmp_path):
        a = ArtifactStore(directory=tmp_path)
        a.put("deadbeef", {"nested": {"arr": np.ones((2, 2))}, "n": 5}, kind="t")
        # A *fresh* store on the same directory has an empty LRU: the read
        # must come from disk and be promoted.
        b = ArtifactStore(directory=tmp_path)
        payload = b.get("deadbeef")
        assert payload["n"] == 5
        np.testing.assert_array_equal(payload["nested"]["arr"], np.ones((2, 2)))
        assert b.stats.disk_hits == 1
        assert b.get("deadbeef") is payload  # now served from memory
        assert b.stats.memory_hits == 1

    def test_clear_memory_keeps_disk(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("cafe", {"v": 1})
        store.clear_memory()
        assert len(store) == 0
        assert store.get("cafe")["v"] == 1
        assert store.stats.disk_hits == 1

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("f00d", {"v": 1})
        path = store.object_path("f00d")
        path.write_bytes(b"definitely not a zip file")
        store.clear_memory()
        assert store.get("f00d") is None
        assert store.stats.corrupt_dropped == 1
        assert not path.exists()  # dropped, so the next put rewrites it
        store.put("f00d", {"v": 2})
        store.clear_memory()
        assert store.get("f00d")["v"] == 2

    def test_truncated_object_is_a_miss(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("0b57", {"arr": np.arange(100.0)})
        path = store.object_path("0b57")
        path.write_bytes(path.read_bytes()[:20])  # partial write remnant
        store.clear_memory()
        assert store.get("0b57") is None
        assert store.stats.corrupt_dropped == 1

    def test_index_manifest(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("aa11", {"v": 1}, kind="embedding/char", meta={"column": "zip"})
        store.put("aa11", {"v": 2}, kind="embedding/char")  # latest wins
        store.put("bb22", {"v": 3}, kind="featurizer/cooccurrence")
        with store.index_path.open("a", encoding="utf-8") as f:
            f.write("{corrupt json\n")  # tolerated tail
        records = {r["key"]: r for r in store.index()}
        assert set(records) == {"aa11", "bb22"}
        assert records["bb22"]["kind"] == "featurizer/cooccurrence"
        assert records["aa11"]["nbytes"] > 0

    def test_disk_write_failure_degrades_not_raises(self, tmp_path, monkeypatch):
        """The store is an accelerator: a full/readonly disk mid-sweep must
        cost wall-clock, never fail the fit that produced the payload."""
        store = ArtifactStore(directory=tmp_path)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store, "_write_object", explode)
        store.put("abcd", {"v": 7})  # must not raise
        assert store.stats.write_errors == 1
        assert store.stats.puts == 1
        assert store.get("abcd")["v"] == 7  # memory tier still serves

    def test_ambient_store_context(self):
        assert get_default_store() is None
        store = ArtifactStore()
        with use_store(store):
            assert get_default_store() is store
            with use_store(None):
                assert get_default_store() is None
            assert get_default_store() is store
        assert get_default_store() is None


# --------------------------------------------------------------------- #
# Fit-path integration
# --------------------------------------------------------------------- #


class TestWarmFit:
    def test_store_does_not_change_predictions(self, small_bundle, small_split):
        _, plain = fit_and_predict(small_bundle, small_split)
        _, stored = fit_and_predict(
            small_bundle, small_split, artifact_store=ArtifactStore()
        )
        assert plain.probabilities.tobytes() == stored.probabilities.tobytes()

    def test_warm_fit_bit_identical(self, small_bundle, small_split):
        store = ArtifactStore()
        _, cold = fit_and_predict(small_bundle, small_split, artifact_store=store)
        assert store.stats.puts > 0
        detector, warm = fit_and_predict(
            small_bundle, small_split, artifact_store=store
        )
        assert cold.probabilities.tobytes() == warm.probabilities.tobytes()
        # The warm fit trained no embeddings: every consulted key hit.
        assert store.stats.hits >= len(detector.artifact_keys)

    def test_round_trip_evict_reload(self, tmp_path, small_bundle, small_split):
        """store → evict (fresh process ≙ fresh LRU) → reload → identical."""
        _, cold = fit_and_predict(
            small_bundle, small_split, artifact_store=ArtifactStore(directory=tmp_path)
        )
        reloaded_store = ArtifactStore(directory=tmp_path)  # empty memory tier
        _, warm = fit_and_predict(
            small_bundle, small_split, artifact_store=reloaded_store
        )
        assert cold.probabilities.tobytes() == warm.probabilities.tobytes()
        assert reloaded_store.stats.disk_hits > 0
        assert reloaded_store.stats.misses == 0

    def test_corrupt_artifact_refits_identically(
        self, tmp_path, small_bundle, small_split
    ):
        store = ArtifactStore(directory=tmp_path)
        _, cold = fit_and_predict(small_bundle, small_split, artifact_store=store)
        # Corrupt every on-disk object; a fresh store must shrug and refit.
        for path in (tmp_path / "objects").rglob("*.npz"):
            path.write_bytes(b"garbage")
        damaged = ArtifactStore(directory=tmp_path)
        _, refit = fit_and_predict(small_bundle, small_split, artifact_store=damaged)
        assert cold.probabilities.tobytes() == refit.probabilities.tobytes()
        assert damaged.stats.corrupt_dropped > 0

    def test_artifact_dir_config_field(self, tmp_path, small_bundle, small_split):
        d1, p1 = fit_and_predict(
            small_bundle, small_split, artifact_dir=str(tmp_path / "store")
        )
        d2, p2 = fit_and_predict(
            small_bundle, small_split, artifact_dir=str(tmp_path / "store")
        )
        assert p1.probabilities.tobytes() == p2.probabilities.tobytes()
        assert d2.artifact_stats is not None and d2.artifact_stats.disk_hits > 0

    def test_ambient_store_used_by_detector(self, small_bundle, small_split):
        store = ArtifactStore()
        with use_store(store):
            fit_and_predict(small_bundle, small_split)
        assert store.stats.puts > 0

    def test_artifact_keys_recorded(self, small_bundle, small_split):
        detector, _ = fit_and_predict(
            small_bundle, small_split, artifact_store=ArtifactStore()
        )
        keys = detector.artifact_keys
        attrs = small_bundle.dirty.attributes
        for attr in attrs:
            assert f"char_embedding/{attr}" in keys
            assert f"word_embedding/{attr}" in keys
        for whole in ("tuple_embedding", "neighborhood", "cooccurrence"):
            assert whole in keys
        assert all(len(k) == 64 for k in keys.values())

    def test_artifact_keys_recorded_without_store(self, small_bundle, small_split):
        """Keys derive from content + config alone — no store needed."""
        with_store, _ = fit_and_predict(
            small_bundle, small_split, artifact_store=ArtifactStore()
        )
        without, _ = fit_and_predict(small_bundle, small_split)
        assert with_store.artifact_keys == without.artifact_keys

    def test_use_artifacts_attaches_to_loaded_detector(
        self, tmp_path, small_bundle, small_split
    ):
        """The rescore-with-saved-model path: a store attached after load
        is consulted by refresh-time refits."""
        from repro.dataset.table import Cell
        from repro.persistence import load_detector, save_detector

        detector, _ = fit_and_predict(small_bundle, small_split)
        save_detector(detector, tmp_path / "model")
        store = ArtifactStore(directory=tmp_path / "art")
        loaded = load_detector(tmp_path / "model", small_bundle.dirty)
        loaded.use_artifacts(store)
        assert loaded.pipeline.artifacts is store
        assert all(f.artifact_store is store for f in loaded.pipeline.featurizers)
        session = DetectionSession(loaded)
        attr = small_bundle.dirty.attributes[0]
        session.apply({Cell(0, attr): "edited-value"}, refresh=True)
        assert store.stats.puts > 0  # refit states went through the store
        # Provenance keys were refreshed for the refitted models.
        assert f"char_embedding/{attr}" in loaded.artifact_keys

    def test_loaded_detector_reattaches_config_store(
        self, tmp_path, small_bundle, small_split
    ):
        """A saved config's artifact_dir survives the load: refresh-time
        refits consult the store without any explicit re-attachment."""
        from repro.dataset.table import Cell
        from repro.persistence import load_detector, save_detector

        art_dir = str(tmp_path / "art")
        detector, _ = fit_and_predict(small_bundle, small_split, artifact_dir=art_dir)
        save_detector(detector, tmp_path / "model")
        loaded = load_detector(tmp_path / "model", small_bundle.dirty)
        store = loaded.artifacts
        assert store is not None and str(store.directory) == art_dir
        assert loaded.pipeline.artifacts is store
        assert all(f.artifact_store is store for f in loaded.pipeline.featurizers)
        attr = small_bundle.dirty.attributes[0]
        session = DetectionSession(loaded)
        session.apply({Cell(0, attr): "reattach-edit"}, refresh=True)
        assert store.stats.lookups > 0  # refits went through the store

    def test_embedding_keys_cover_full_training_config(self):
        """Every FastTextEmbedding training knob enters the key config, so
        a changed default can never serve stale weights."""
        import inspect

        from repro.embeddings.fasttext import FastTextEmbedding
        from repro.features.attribute import CharEmbeddingFeaturizer

        config = CharEmbeddingFeaturizer(dim=4, epochs=1)._embedding_config()
        knobs = set(inspect.signature(FastTextEmbedding.__init__).parameters)
        knobs -= {"self", "rng"}  # rng is replaced by the derived seed
        # The compute backend enters the key only when *pinned* (asserted
        # below): artifact keys are also the training-seed material, so an
        # always-present None field would reseed every default-path fit,
        # and the unpinned path always runs the reference numpy kernel.
        knobs -= {"backend"}
        assert knobs <= set(config), f"missing knobs: {knobs - set(config)}"

    def test_pinned_embedding_backend_enters_key_config(self):
        """A pinned backend trains different tables (e.g. torch), so it
        must key its artifacts separately; the default path's key stays
        byte-stable."""
        from repro.embeddings.fasttext import FastTextEmbedding

        default = FastTextEmbedding(dim=4).config_dict()
        assert "backend" not in default
        pinned = FastTextEmbedding(dim=4, backend="torch").config_dict()
        assert pinned["backend"] == "torch"

    def test_whole_state_refresh_consults_store(self, small_bundle):
        """Base-class refresh (cooccurrence) goes through the store: a
        reverted edit is served, not retrained."""
        from repro.dataset.table import Cell, DatasetDelta
        from repro.features.tuple_level import CooccurrenceFeaturizer

        dataset = small_bundle.dirty.copy()
        store = ArtifactStore()
        featurizer = CooccurrenceFeaturizer()
        featurizer.artifact_store = store
        featurizer.fit_through_store(dataset)
        attr = dataset.attributes[0]
        original = dataset.value(Cell(0, attr))
        delta = dataset.apply_edits({Cell(0, attr): original + "-x"})
        assert featurizer.refresh(dataset, delta)
        stored_after_edit = store.stats.puts
        assert stored_after_edit == 2  # initial fit + refit both stored
        revert = dataset.apply_edits({Cell(0, attr): original})
        hits_before = store.stats.hits
        assert featurizer.refresh(dataset, revert)
        assert store.stats.hits == hits_before + 1  # served, not retrained
        assert store.stats.puts == stored_after_edit

    def test_saved_detector_records_artifact_keys(
        self, tmp_path, small_bundle, small_split
    ):
        from repro.persistence import load_detector, save_detector

        detector, _ = fit_and_predict(
            small_bundle, small_split, artifact_store=ArtifactStore()
        )
        save_detector(detector, tmp_path / "model")
        state = json.loads((tmp_path / "model" / "state.json").read_text())
        assert state["artifact_keys"] == detector.artifact_keys
        loaded = load_detector(tmp_path / "model", small_bundle.dirty)
        assert loaded.artifact_keys == detector.artifact_keys

    def test_column_scoped_invalidation(self, small_bundle, small_split):
        """Editing one column changes only that column's embedding keys."""
        store = ArtifactStore(max_entries=256)
        detector, _ = fit_and_predict(
            small_bundle, small_split, artifact_store=store
        )
        before = detector.artifact_keys
        edited = small_bundle.dirty.copy()
        attr = edited.attributes[0]
        from repro.dataset.table import Cell

        edited.set_value(Cell(0, attr), "completely-new-value")
        fresh = HoloDetect(DetectorConfig(**TINY, artifact_store=store))
        fresh.fit(edited, small_split.training, small_bundle.constraints)
        after = fresh.artifact_keys
        assert after[f"char_embedding/{attr}"] != before[f"char_embedding/{attr}"]
        assert after[f"word_embedding/{attr}"] != before[f"word_embedding/{attr}"]
        untouched = edited.attributes[1]
        assert (
            after[f"char_embedding/{untouched}"]
            == before[f"char_embedding/{untouched}"]
        )
        # Relation-wide artifacts see any change.
        assert after["tuple_embedding"] != before["tuple_embedding"]


# --------------------------------------------------------------------- #
# Sweep integration
# --------------------------------------------------------------------- #

SWEEP_SPEC = {
    "datasets": [{"name": "hospital", "rows": 50}],
    "error_profiles": ["native"],
    "label_budgets": [0.15],
    "methods": [
        {"name": "holodetect", "epochs": 2, "embedding_dim": 4,
         "min_training_steps": 20},
        {"name": "superl", "epochs": 2, "embedding_dim": 4,
         "min_training_steps": 20},
    ],
    "trials": 2,
    "seed": 5,
}

ACCURACY_FIELDS = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")


def accuracy_view(records):
    return [{k: r[k] for k in ACCURACY_FIELDS} for r in records]


class TestSweepArtifacts:
    @pytest.fixture(scope="class")
    def matrix(self):
        return ScenarioMatrix.from_dict(SWEEP_SPEC)

    @pytest.fixture(scope="class")
    def cold(self, matrix):
        return run_matrix(matrix, executor="serial")

    def test_serial_sweep_with_artifacts_identical(self, matrix, cold, tmp_path):
        warm = run_matrix(matrix, executor="serial", artifact_dir=tmp_path / "a")
        assert accuracy_view(warm.records) == accuracy_view(cold.records)
        assert warm.artifacts is not None
        stats = warm.artifacts["stats"]
        # Methods and trials share one dirty relation: the sweep must reuse
        # fits, not just store them.
        assert stats["hits"] > 0 and stats["puts"] > 0

    def test_two_worker_shared_dir_identical(self, matrix, cold, tmp_path):
        parallel = run_matrix(
            matrix, workers=2, executor="process", artifact_dir=tmp_path / "b"
        )
        assert parallel.workers == 2
        assert accuracy_view(parallel.records) == accuracy_view(cold.records)
        assert parallel.artifacts is not None
        # Worker-side counters made it back to the coordinator.
        assert parallel.artifacts["stats"]["puts"] > 0

    # No thread-executor variant here: detector-based methods train nn
    # models whose layers toggle process-global train/eval state, so two
    # concurrent in-process trainings race (a pre-existing constraint —
    # run_matrix documents that CPU-bound scenarios belong on the process
    # executor).  The artifact store itself is thread-safe (locked), which
    # TestArtifactStore covers directly.

    def test_report_json_additive(self, matrix, cold, tmp_path):
        payload = cold.to_json()
        assert "artifacts" not in payload
        warm = run_matrix(matrix, executor="serial", artifact_dir=tmp_path / "d")
        assert warm.to_json()["artifacts"]["dir"] == str(tmp_path / "d")


# --------------------------------------------------------------------- #
# Spec integration
# --------------------------------------------------------------------- #


class TestSpecArtifacts:
    def test_artifacts_table_not_fingerprinted(self):
        from repro.spec import DetectorSpec

        plain = DetectorSpec.from_dict({"schema": "repro.spec/v1"})
        with_store = DetectorSpec.from_dict(
            {"schema": "repro.spec/v1", "artifacts": {"dir": "x/y"}}
        )
        assert plain.fingerprint() == with_store.fingerprint()
        assert with_store.to_dict()["artifacts"] == {"dir": "x/y"}
        assert "artifacts" not in plain.to_dict()

    def test_from_spec_applies_artifact_dir(self, tmp_path):
        from repro.spec import DetectorSpec

        spec = DetectorSpec.from_dict(
            {"schema": "repro.spec/v1", "artifacts": {"dir": str(tmp_path)}}
        )
        detector = HoloDetect.from_spec(spec)
        assert detector.config.artifact_dir == str(tmp_path)
        assert detector.artifacts is not None
        assert detector.artifacts.directory == tmp_path

    def test_unknown_artifact_keys_rejected(self):
        from repro.spec import DetectorSpec, SpecError

        with pytest.raises(SpecError, match=r"\[artifacts\].*unknown"):
            DetectorSpec.from_dict(
                {"schema": "repro.spec/v1", "artifacts": {"directory": "x"}}
            )

    def test_bad_dir_type_rejected(self):
        from repro.spec import DetectorSpec, SpecError

        with pytest.raises(SpecError, match="dir must be a string"):
            DetectorSpec.from_dict(
                {"schema": "repro.spec/v1", "artifacts": {"dir": 3}}
            )

    def test_detector_table_store_fields_rejected(self):
        """The store location must never enter the fingerprinted [detector]
        table — both the file path and direct construction are guarded."""
        from repro.spec import DetectorSpec, SpecError

        for key in ("artifact_dir", "artifact_store"):
            with pytest.raises(SpecError, match="not spec-able"):
                DetectorSpec.from_dict(
                    {"schema": "repro.spec/v1", "detector": {key: "x"}}
                )
            with pytest.raises(SpecError, match="not spec-able"):
                DetectorSpec(detector={key: "x"}).validate()
