"""Unit tests for Algorithm 4 (data augmentation)."""

import pytest

from repro.augmentation import Policy, augment_training_set
from repro.baselines import RandomChannelPolicy
from repro.dataset import Cell, LabeledCell, TrainingSet


def make_training(num_correct: int, num_errors: int) -> TrainingSet:
    examples = [
        LabeledCell(Cell(i, "a"), f"value{i}", f"value{i}") for i in range(num_correct)
    ]
    examples += [
        LabeledCell(Cell(i, "b"), f"valxe{i}", f"value{i}") for i in range(num_errors)
    ]
    return TrainingSet(examples)


@pytest.fixture
def policy():
    return Policy.learn([(f"value{i}", f"valxe{i}") for i in range(5)])


class TestAugmentation:
    def test_balances_classes_by_default(self, policy):
        training = make_training(40, 4)
        result = augment_training_set(training, policy, rng=0)
        assert len(result) == 40 - 4

    def test_synthetic_examples_are_errors(self, policy):
        training = make_training(30, 2)
        result = augment_training_set(training, policy, rng=0)
        assert all(e.is_error for e in result.examples)

    def test_synthetic_true_value_is_source(self, policy):
        training = make_training(30, 2)
        result = augment_training_set(training, policy, rng=0)
        true_values = {e.true for e in result.examples}
        assert true_values <= {f"value{i}" for i in range(30)}

    def test_target_ratio(self, policy):
        training = make_training(50, 0)
        result = augment_training_set(training, policy, target_ratio=0.4, rng=0)
        assert len(result) == 20

    def test_target_ratio_already_met(self, policy):
        training = make_training(10, 10)
        result = augment_training_set(training, policy, target_ratio=0.5, rng=0)
        assert len(result) == 0

    def test_alpha_throttles_acceptance(self, policy):
        training = make_training(50, 0)
        eager = augment_training_set(training, policy, alpha=1.0, rng=0)
        lazy = augment_training_set(
            training, policy, alpha=0.05, max_attempts_factor=3, rng=0
        )
        assert len(lazy) <= len(eager)
        assert lazy.attempts <= 3 * 50

    def test_max_examples_cap(self, policy):
        training = make_training(100, 0)
        result = augment_training_set(training, policy, max_examples=7, rng=0)
        assert len(result) == 7

    def test_empty_policy_produces_nothing(self):
        training = make_training(20, 2)
        result = augment_training_set(training, Policy({}), rng=0)
        assert len(result) == 0

    def test_no_correct_examples(self, policy):
        training = make_training(0, 3)
        result = augment_training_set(training, policy, rng=0)
        assert len(result) == 0

    def test_invalid_alpha(self, policy):
        with pytest.raises(ValueError):
            augment_training_set(make_training(5, 0), policy, alpha=0.0)

    def test_invalid_target_ratio(self, policy):
        with pytest.raises(ValueError):
            augment_training_set(make_training(5, 0), policy, target_ratio=-1.0)

    def test_deterministic_given_seed(self, policy):
        training = make_training(30, 3)
        a = augment_training_set(training, policy, rng=5)
        b = augment_training_set(training, policy, rng=5)
        assert [e.observed for e in a.examples] == [e.observed for e in b.examples]


class TestAttemptAccounting:
    """Rejected-by-alpha and identity draws are reported separately, so a
    stalled augmentation run is diagnosable without guesswork."""

    def test_counters_partition_attempts(self, policy):
        training = make_training(40, 0)
        result = augment_training_set(
            training, policy, alpha=0.5, max_attempts_factor=2, rng=3
        )
        assert (
            result.attempts
            == len(result.examples) + result.rejected_alpha + result.identity_draws
        )

    def test_alpha_rejections_counted(self, policy):
        training = make_training(40, 0)
        result = augment_training_set(
            training, policy, alpha=0.05, max_attempts_factor=3, rng=0
        )
        assert result.rejected_alpha > 0
        # With an always-applicable channel, rejections come from alpha.
        assert result.rejected_alpha >= result.identity_draws

    def test_identity_draws_counted_for_inapplicable_channel(self):
        # A channel whose only transformations never apply to the training
        # values: every accepted draw is an identity draw, none are alpha
        # rejections (alpha=1), and no examples are produced.
        from repro.augmentation.transformations import Transformation

        narrow = Policy({Transformation("zzz", "qqq"): 1.0})
        training = make_training(20, 0)
        result = augment_training_set(
            training, narrow, alpha=1.0, max_attempts_factor=2, rng=0
        )
        assert len(result.examples) == 0
        assert result.rejected_alpha == 0
        assert result.identity_draws == result.attempts > 0

    def test_full_acceptance_has_no_alpha_rejections(self, policy):
        training = make_training(30, 0)
        result = augment_training_set(training, policy, alpha=1.0, rng=1)
        assert result.rejected_alpha == 0

    def test_composite_policy_accounting(self, policy):
        """Policies overriding transform() use the per-draw fallback path
        and still report the same counters."""
        from repro.augmentation.policy import CompositePolicy

        training = make_training(30, 0)
        result = augment_training_set(
            training, CompositePolicy(policy), alpha=0.6,
            max_attempts_factor=5, rng=2,
        )
        assert (
            result.attempts
            == len(result.examples) + result.rejected_alpha + result.identity_draws
        )
        assert result.rejected_alpha > 0


class TestRandomChannel:
    def test_random_channel_generates_errors(self):
        training = make_training(30, 0)
        result = augment_training_set(training, RandomChannelPolicy(), rng=0)
        assert len(result) == 30
        assert all(e.observed != e.true for e in result.examples)
