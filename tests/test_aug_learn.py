"""Unit + property tests for Algorithm 1 (TL) and Algorithm 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augmentation import (
    Transformation,
    empirical_distribution,
    learn_transformations,
)
from repro.augmentation.learn import learn_from_pairs

text = st.text(alphabet="abc01x", max_size=8)


class TestLearnTransformations:
    def test_paper_example(self):
        """(60612, 6061x2) must yield the hierarchy of §5.2."""
        learned = set(learn_transformations("60612", "6061x2"))
        assert Transformation("60612", "6061x2") in learned
        assert Transformation("", "x") in learned

    def test_identity_pair_yields_nothing(self):
        assert learn_transformations("abc", "abc") == []

    def test_pure_addition(self):
        learned = set(learn_transformations("ab", "axb"))
        assert Transformation("", "x") in learned

    def test_pure_removal(self):
        learned = set(learn_transformations("axb", "ab"))
        assert Transformation("x", "") in learned

    def test_full_swap_no_common_substring(self):
        learned = learn_transformations("abc", "xyz")
        assert learned == [Transformation("abc", "xyz")]

    def test_empty_to_value(self):
        assert Transformation("", "x") in learn_transformations("", "x")

    def test_value_to_empty(self):
        assert Transformation("x", "") in learn_transformations("x", "")

    def test_includes_whole_string_rewrite(self):
        learned = learn_transformations("Female", "Male")
        assert Transformation("Female", "Male") in learned

    @given(clean=text, dirty=text)
    @settings(max_examples=60, deadline=None)
    def test_no_identity_transformations(self, clean, dirty):
        for t in learn_transformations(clean, dirty):
            assert t.src != t.dst

    @given(clean=text, dirty=text)
    @settings(max_examples=60, deadline=None)
    def test_differing_pair_learns_whole_rewrite(self, clean, dirty):
        if clean != dirty:
            assert Transformation(clean, dirty) in learn_transformations(clean, dirty)

    @given(clean=text, dirty=text)
    @settings(max_examples=40, deadline=None)
    def test_terminates_and_is_deterministic(self, clean, dirty):
        assert learn_transformations(clean, dirty) == learn_transformations(clean, dirty)


class TestLearnFromPairs:
    def test_skips_identity_pairs(self):
        lists = learn_from_pairs([("a", "a"), ("ab", "axb")])
        assert len(lists) == 1

    def test_one_list_per_error_pair(self):
        lists = learn_from_pairs([("ab", "axb"), ("cd", "cxd")])
        assert len(lists) == 2


class TestEmpiricalDistribution:
    def test_normalised(self):
        lists = learn_from_pairs([("ab", "axb"), ("cd", "cxd"), ("e", "ex")])
        dist = empirical_distribution(lists)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_repeated_transformation_gets_more_mass(self):
        lists = learn_from_pairs([("ab", "axb"), ("cd", "cxd"), ("ef", "exf")])
        dist = empirical_distribution(lists)
        add_x = Transformation("", "x")
        assert dist[add_x] == max(dist.values())

    def test_empty_input(self):
        assert empirical_distribution([]) == {}

    def test_counts_multiplicity_within_list(self):
        # One list containing the same transformation twice counts twice.
        t = Transformation("", "x")
        dist = empirical_distribution([[t, t], [Transformation("a", "b")]])
        assert dist[t] == pytest.approx(2 / 3)
