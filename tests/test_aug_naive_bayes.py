"""Unit tests for the Naïve Bayes weak-supervision repair model (§5.4)."""

import pytest

from repro.augmentation import NaiveBayesRepairModel
from repro.dataset import Cell, Dataset


@pytest.fixture
def fd_dataset():
    """Strong zip->city correlation with one deviant cell."""
    rows = [["60612", "Chicago", "IL"]] * 20 + [["02139", "Cambridge", "MA"]] * 20
    rows.append(["60612", "Cicago", "IL"])  # the error
    return Dataset.from_rows(["zip", "city", "state"], rows)


class TestRepairSuggestions:
    def test_repairs_the_deviant_cell(self, fd_dataset):
        model = NaiveBayesRepairModel(confidence_threshold=0.8).fit(fd_dataset)
        suggestion = model.suggest_repair(Cell(40, "city"), fd_dataset)
        assert suggestion is not None
        assert suggestion.repair == "Chicago"
        assert suggestion.observed == "Cicago"
        assert suggestion.confidence >= 0.8

    def test_leaves_consistent_cells_alone(self, fd_dataset):
        model = NaiveBayesRepairModel(confidence_threshold=0.8).fit(fd_dataset)
        assert model.suggest_repair(Cell(0, "city"), fd_dataset) is None

    def test_suggest_repairs_scan(self, fd_dataset):
        model = NaiveBayesRepairModel(confidence_threshold=0.8).fit(fd_dataset)
        repairs = model.suggest_repairs(fd_dataset)
        assert any(r.cell == Cell(40, "city") for r in repairs)

    def test_max_cells_bound(self, fd_dataset):
        model = NaiveBayesRepairModel().fit(fd_dataset)
        assert model.suggest_repairs(fd_dataset, max_cells=5) is not None

    def test_example_pairs_orientation(self, fd_dataset):
        """Pairs are (repair, observed) = (clean, dirty) for Algorithm 1."""
        model = NaiveBayesRepairModel(confidence_threshold=0.8).fit(fd_dataset)
        pairs = model.example_pairs(fd_dataset)
        assert ("Chicago", "Cicago") in pairs

    def test_high_threshold_suppresses_repairs(self, fd_dataset):
        model = NaiveBayesRepairModel(confidence_threshold=0.999999).fit(fd_dataset)
        # Nearly impossible confidence: very few (likely zero) repairs.
        repairs = model.suggest_repairs(fd_dataset)
        weaker = NaiveBayesRepairModel(confidence_threshold=0.5).fit(fd_dataset)
        assert len(repairs) <= len(weaker.suggest_repairs(fd_dataset))

    def test_unfitted_raises(self, fd_dataset):
        with pytest.raises(RuntimeError):
            NaiveBayesRepairModel().suggest_repair(Cell(0, "city"), fd_dataset)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            NaiveBayesRepairModel(confidence_threshold=0.0)


class TestPrecisionProperty:
    def test_precision_on_synthetic_errors(self):
        """§6.7/Table 6: the weak-supervision model should be precise.

        Build a dataset with known injected swaps and check that most
        suggested repairs point at genuinely dirty cells.
        """
        import numpy as np

        rng = np.random.default_rng(0)
        keys = [f"k{i}" for i in range(10)]
        values = {k: f"v{i}" for i, k in enumerate(keys)}
        rows = []
        for _ in range(300):
            k = keys[int(rng.integers(0, 10))]
            rows.append([k, values[k], "c"])
        clean = Dataset.from_rows(["k", "v", "pad"], rows)
        dirty = clean.copy()
        corrupted = set()
        for row in range(0, 300, 30):  # 10 swaps
            cell = Cell(row, "v")
            dirty.set_value(cell, "v9" if clean.value(cell) != "v9" else "v0")
            corrupted.add(cell)
        model = NaiveBayesRepairModel(confidence_threshold=0.9).fit(dirty)
        repairs = model.suggest_repairs(dirty)
        relevant = [r for r in repairs if r.cell.attr == "v"]
        assert relevant, "model found no repairs at all"
        hits = sum(1 for r in relevant if r.cell in corrupted)
        assert hits / len(relevant) > 0.7  # the paper's precision bar
