"""Unit tests for the policy Π̂ (Algorithm 3) and its variants."""

import numpy as np
import pytest

from repro.augmentation import Policy, Transformation
from repro.augmentation.policy import UniformPolicy


@pytest.fixture
def learned_policy():
    """Policy learned from Hospital-style 'x' typos plus one value swap."""
    pairs = [
        ("60612", "6x612"),
        ("60614", "606x4"),
        ("Chicago", "Chixago"),
        ("Female", "Male"),
    ]
    return Policy.learn(pairs)


class TestConditional:
    def test_renormalises_over_applicable(self, learned_policy):
        conditional = learned_policy.conditional("60612")
        assert conditional
        assert sum(conditional.values()) == pytest.approx(1.0)
        for t in conditional:
            assert t.applicable("60612")

    def test_inapplicable_excluded(self, learned_policy):
        conditional = learned_policy.conditional("zzz")
        # Only ADD transformations can apply to a disjoint string.
        for t in conditional:
            assert t.src == "" or t.src in "zzz"

    def test_empty_policy(self):
        assert Policy({}).conditional("abc") == {}

    def test_top_k_ordering(self, learned_policy):
        top = learned_policy.top_k("60612", 3)
        probs = [p for _, p in top]
        assert probs == sorted(probs, reverse=True)
        assert len(top) <= 3


class TestSampling:
    def test_sample_respects_applicability(self, learned_policy):
        rng = np.random.default_rng(0)
        for _ in range(20):
            phi = learned_policy.sample("60612", rng)
            assert phi is not None
            assert phi.applicable("60612")

    def test_transform_produces_changed_value(self, learned_policy):
        rng = np.random.default_rng(1)
        seen_changed = False
        for _ in range(20):
            out = learned_policy.transform("60612", rng)
            if out is not None:
                assert out != "60612" or True
                seen_changed = seen_changed or out != "60612"
        assert seen_changed

    def test_sample_none_when_nothing_applies(self):
        policy = Policy({Transformation("qq", "r"): 1.0})
        assert policy.sample("abc", rng=0) is None
        assert policy.transform("abc", rng=0) is None

    def test_x_exchange_dominates_learned_distribution(self, learned_policy):
        """Three of four training errors substitute 'x' for a character —
        the learned distribution must weight x-exchanges above the one-off
        value swap."""
        x_exchange_mass = sum(
            learned_policy.probability(t)
            for t in learned_policy.transformations
            if t.dst == "x"
        )
        swap = Transformation("Female", "Male")
        assert x_exchange_mass > learned_policy.probability(swap)


class TestNormalisation:
    def test_defensive_normalisation(self):
        policy = Policy({Transformation("a", "b"): 2.0, Transformation("c", "d"): 2.0})
        assert policy.probability(Transformation("a", "b")) == pytest.approx(0.5)

    def test_len(self, learned_policy):
        assert len(learned_policy) == len(learned_policy.transformations)


class TestUniformPolicy:
    def test_uniform_over_applicable(self):
        ts = [Transformation("", "x"), Transformation("6", "9"), Transformation("zz", "y")]
        policy = UniformPolicy(ts)
        conditional = policy.conditional("60612")
        # "zz" not applicable; the two applicable get 1/2 each.
        assert len(conditional) == 2
        assert all(p == pytest.approx(0.5) for p in conditional.values())

    def test_deduplicates(self):
        t = Transformation("a", "b")
        policy = UniformPolicy([t, t, t])
        assert len(policy) == 1

    def test_empty(self):
        assert UniformPolicy([]).conditional("abc") == {}
