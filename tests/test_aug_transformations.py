"""Unit + property tests for transformations (the noisy-channel alphabet)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.augmentation import Transformation, TransformationKind

text = st.text(alphabet="abc01x", max_size=10)


class TestKinds:
    def test_add(self):
        assert Transformation("", "x").kind is TransformationKind.ADD

    def test_remove(self):
        assert Transformation("x", "").kind is TransformationKind.REMOVE

    def test_exchange(self):
        assert Transformation("12", "1x2").kind is TransformationKind.EXCHANGE

    def test_identity_rejected(self):
        with pytest.raises(ValueError):
            Transformation("a", "a")
        with pytest.raises(ValueError):
            Transformation("", "")


class TestApplicability:
    def test_add_applies_anywhere(self):
        t = Transformation("", "x")
        assert t.applicable("")
        assert t.applicable("abc")
        assert t.occurrences("ab") == [0, 1, 2]

    def test_substring_requirement(self):
        t = Transformation("12", "1x2")
        assert t.applicable("60612")
        assert not t.applicable("60634")

    def test_occurrences_overlapping(self):
        t = Transformation("aa", "b")
        assert t.occurrences("aaa") == [0, 1]


class TestApply:
    def test_exchange_single_occurrence(self):
        t = Transformation("12", "1x2")
        assert t.apply("60612", rng=0) == "6061x2"

    def test_add_inserts_once(self):
        t = Transformation("", "x")
        out = t.apply("606", rng=0)
        assert len(out) == 4
        assert out.replace("x", "", 1) == "606" or out.count("x") == 1

    def test_remove(self):
        t = Transformation("6", "")
        out = t.apply("606", rng=1)
        assert out in ("06", "60")

    def test_not_applicable_raises(self):
        with pytest.raises(ValueError):
            Transformation("zz", "y").apply("abc")

    def test_random_position_choice(self):
        t = Transformation("a", "X")
        outcomes = {t.apply("aaa", rng=np.random.default_rng(s)) for s in range(30)}
        assert outcomes == {"Xaa", "aXa", "aaX"}

    @given(value=text, dst=st.text(alphabet="xyz", min_size=1, max_size=3))
    def test_add_length_invariant(self, value, dst):
        out = Transformation("", dst).apply(value, rng=0)
        assert len(out) == len(value) + len(dst)

    @given(value=st.text(alphabet="ab", min_size=1, max_size=10))
    def test_apply_changes_value_when_src_dst_disjoint(self, value):
        """Replacing a present char with a char not in the string changes it."""
        t = Transformation(value[0], "z")
        assert t.apply(value, rng=0) != value

    @given(value=text)
    def test_occurrences_are_valid_offsets(self, value):
        t = Transformation("a", "b")
        for pos in t.occurrences(value):
            assert value[pos : pos + 1] == "a"

    def test_str(self):
        assert "->" in str(Transformation("a", "b"))
