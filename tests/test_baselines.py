"""Unit + integration tests for all baseline detectors."""

import pytest

from repro.baselines import (
    ActiveLearningDetector,
    ConstraintViolationDetector,
    ForbiddenItemsetDetector,
    GroundTruthOracle,
    HoloCleanDetector,
    LogisticRegressionDetector,
    OutlierDetector,
    ResamplingDetector,
    SemiSupervisedDetector,
    SupervisedDetector,
    uniform_policy_from,
)
from repro.baselines.outlier import normalized_mutual_information
from repro.baselines.resampling import oversample_errors
from repro.core import DetectorConfig
from repro.dataset import Cell
from repro.evaluation import evaluate_predictions, make_split

FAST = DetectorConfig(epochs=10, embedding_dim=8, seed=0)


@pytest.fixture(scope="module")
def hospital():
    from repro.data import load_dataset

    bundle = load_dataset("hospital", num_rows=200, seed=7)
    split = make_split(bundle, 0.12, rng=0)
    return bundle, split


class TestCV:
    def test_flags_typo_cells(self, zip_dataset, zip_fd, typo_cell):
        det = ConstraintViolationDetector().fit(zip_dataset, constraints=[zip_fd])
        flagged = det.predict_error_cells()
        assert typo_cell in flagged
        assert Cell(0, "city") in flagged  # whole violating group flagged

    def test_scoped_prediction(self, zip_dataset, zip_fd, typo_cell):
        det = ConstraintViolationDetector().fit(zip_dataset, constraints=[zip_fd])
        assert det.predict_error_cells([typo_cell]) == {typo_cell}
        assert det.predict_error_cells([Cell(4, "zip")]) == set()

    def test_no_constraints_flags_nothing(self, zip_dataset):
        det = ConstraintViolationDetector().fit(zip_dataset)
        assert det.predict_error_cells() == set()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ConstraintViolationDetector().predict_error_cells()


class TestHC:
    def test_more_precise_than_cv(self, hospital):
        bundle, split = hospital
        cv = ConstraintViolationDetector().fit(bundle.dirty, constraints=bundle.constraints)
        hc = HoloCleanDetector().fit(bundle.dirty, constraints=bundle.constraints)
        cv_m = evaluate_predictions(
            cv.predict_error_cells(split.test_cells), bundle.error_cells, split.test_cells
        )
        hc_m = evaluate_predictions(
            hc.predict_error_cells(split.test_cells), bundle.error_cells, split.test_cells
        )
        assert hc_m.precision >= cv_m.precision

    def test_flags_subset_of_cv(self, hospital):
        bundle, _ = hospital
        cv = ConstraintViolationDetector().fit(bundle.dirty, constraints=bundle.constraints)
        hc = HoloCleanDetector().fit(bundle.dirty, constraints=bundle.constraints)
        assert hc.predict_error_cells() <= cv.predict_error_cells()

    def test_no_constraints(self, zip_dataset):
        det = HoloCleanDetector().fit(zip_dataset)
        assert det.predict_error_cells() == set()


class TestOD:
    def test_nmi_bounds_and_extremes(self):
        perfect = ["a", "b"] * 20
        assert normalized_mutual_information(perfect, perfect) == pytest.approx(1.0)
        constant = ["x"] * 40
        assert normalized_mutual_information(perfect, constant) == 0.0

    def test_nmi_validates_input(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(["a"], ["a", "b"])

    def test_flags_conditional_outlier(self):
        from repro.dataset import Dataset

        rows = [["60612", "Chicago"]] * 20 + [["02139", "Cambridge"]] * 20
        rows.append(["60612", "Cicago"])  # conditional outlier
        d = Dataset.from_rows(["zip", "city"], rows)
        det = OutlierDetector(correlation_threshold=0.2, probability_threshold=0.1)
        det.fit(d)
        flagged = det.predict_error_cells()
        assert Cell(40, "city") in flagged
        assert Cell(0, "city") not in flagged


class TestFBI:
    def test_flags_low_lift_pair(self):
        from repro.dataset import Dataset

        # 'a'/'1' and 'b'/'2' pair strongly; one row pairs 'a' with '2'.
        rows = [["a", "1"]] * 20 + [["b", "2"]] * 20 + [["a", "2"]]
        d = Dataset.from_rows(["x", "y"], rows)
        det = ForbiddenItemsetDetector(max_lift=0.5, min_support=5).fit(d)
        flagged = det.predict_error_cells()
        assert Cell(40, "x") in flagged and Cell(40, "y") in flagged

    def test_rare_values_not_flaggable(self):
        from repro.dataset import Dataset

        rows = [["a", "1"]] * 20 + [["q", "9"]]  # 'q'/'9' below support
        d = Dataset.from_rows(["x", "y"], rows)
        det = ForbiddenItemsetDetector(min_support=5).fit(d)
        assert Cell(20, "x") not in det.predict_error_cells()

    def test_invalid_lift(self):
        with pytest.raises(ValueError):
            ForbiddenItemsetDetector(max_lift=0.0)


class TestLR:
    def test_requires_training(self, zip_dataset):
        with pytest.raises(ValueError):
            LogisticRegressionDetector().fit(zip_dataset)

    def test_runs_end_to_end(self, hospital):
        bundle, split = hospital
        det = LogisticRegressionDetector(epochs=50, seed=0)
        det.fit(bundle.dirty, split.training, bundle.constraints)
        flagged = det.predict_error_cells(split.test_cells)
        assert flagged <= set(split.test_cells)


class TestSuperL:
    def test_high_precision_low_recall_profile(self, hospital):
        bundle, split = hospital
        det = SupervisedDetector(FAST).fit(bundle.dirty, split.training, bundle.constraints)
        m = evaluate_predictions(
            det.predict_error_cells(split.test_cells), bundle.error_cells, split.test_cells
        )
        # SuperL precision should be decent even when recall is limited.
        assert m.precision >= m.recall or m.precision > 0.6

    def test_requires_training(self, zip_dataset):
        with pytest.raises(ValueError):
            SupervisedDetector(FAST).fit(zip_dataset)

    def test_augment_forced_off(self):
        det = SupervisedDetector(DetectorConfig(augment=True))
        assert det.config.augment is False


class TestResampling:
    def test_oversample_balances(self, zip_training):
        balanced = oversample_errors(zip_training, rng=0)
        assert len(balanced.errors) == len(balanced.correct)

    def test_oversample_no_errors_noop(self):
        from repro.dataset import LabeledCell, TrainingSet

        ts = TrainingSet([LabeledCell(Cell(i, "a"), "v", "v") for i in range(5)])
        assert oversample_errors(ts, rng=0) is ts

    def test_detector_runs(self, hospital):
        bundle, split = hospital
        det = ResamplingDetector(FAST).fit(bundle.dirty, split.training, bundle.constraints)
        assert det.predict_error_cells(split.test_cells[:100]) is not None

    def test_requires_training(self, zip_dataset):
        with pytest.raises(ValueError):
            ResamplingDetector(FAST).fit(zip_dataset)


class TestSemiL:
    def test_runs_with_rounds(self, hospital):
        bundle, split = hospital
        det = SemiSupervisedDetector(FAST, rounds=1, unlabeled_pool_size=300)
        det.fit(bundle.dirty, split.training, bundle.constraints)
        assert det.predict_error_cells(split.test_cells[:50]) is not None

    def test_requires_training(self, zip_dataset):
        with pytest.raises(ValueError):
            SemiSupervisedDetector(FAST).fit(zip_dataset)


class TestActiveL:
    def test_oracle_counts_queries(self, hospital):
        bundle, _ = hospital
        oracle = GroundTruthOracle(bundle)
        example = oracle(Cell(0, bundle.dirty.attributes[0]))
        assert oracle.queries == 1
        assert example.observed == bundle.dirty.value(example.cell)

    def test_loop_acquires_labels(self, hospital):
        bundle, split = hospital
        oracle = GroundTruthOracle(bundle)
        det = ActiveLearningDetector(
            oracle, split.sampling_cells, loops=1, labels_per_loop=10, config=FAST
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        assert det.total_queried == 10
        assert det.predict_error_cells(split.test_cells[:50]) is not None

    def test_requires_training(self, hospital):
        bundle, split = hospital
        det = ActiveLearningDetector(GroundTruthOracle(bundle), split.sampling_cells)
        with pytest.raises(ValueError):
            det.fit(bundle.dirty)


class TestUniformPolicyVariant:
    def test_uniform_policy_learned_transformations(self, hospital):
        bundle, split = hospital
        policy = uniform_policy_from(bundle.dirty, split.training)
        assert len(policy) > 0
        conditional = policy.conditional("60612" if True else "")
        probs = set(round(p, 9) for p in conditional.values())
        assert len(probs) <= 1  # uniform over applicable
