"""Chaos suite: coordinated sweeps under injected I/O faults.

Each case installs a deterministic fault schedule (``repro.faults.inject``)
and drives the full cooperative matrix — three claim-loop workers sharing
one result ledger — straight through it.  The invariants are absolute, not
statistical:

- every scenario executes **exactly once** globally (the audit log has no
  duplicate ``execute`` events),
- the shared store reloads cleanly afterwards (torn appends healed, never
  corrupted),
- the accuracy records are **bit-identical** to a fault-free sequential
  run,
- and the schedule actually fired (a chaos case that injected nothing
  proves nothing).

Schedules are chosen so faults always clear within the retry budget
(``first:N``/``torn:N`` with N < attempts; ``rate`` seeds verified to have
no fire-run ≥ the attempt count), which is what makes bit-identity a fair
demand.  Exhaustion paths are covered by tests/test_faults_callsites.py.
"""

from __future__ import annotations

import threading

import pytest

from repro.coordination import iter_leases, read_audit
from repro.evaluation.matrix import CoordinateOptions, ScenarioMatrix, run_matrix
from repro.evaluation.store import ResultStore
from repro.faults import RetryPolicy, inject, use_policy

MATRIX_SPEC = {
    "datasets": [{"name": "hospital", "rows": 60}],
    "error_profiles": ["native"],
    "label_budgets": [0.1, 0.2],
    "methods": ["cv", "od"],
    "trials": 2,
    "seed": 5,
}

ACCURACY_FIELDS = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")

#: point × schedule sweep.  Every schedule here clears within one call's
#: 4-attempt retry budget, so the sweep must finish perfectly.
CHAOS_CASES = {
    "append-transient": "store.append=first:2:EAGAIN",
    "append-torn": "store.append=torn:2",
    "append-seeded-rate": "store.append=rate:0.5:EAGAIN",  # seed 0: max run 3
    "read-transient": "store.read=first:3:EIO",
    "claim-contended": "lease.claim=first:6:EAGAIN",
    "release-flaky": "lease.release=first:2:ESTALE",
    "audit-torn": "lease.audit=torn:3",
    "audit-transient": "lease.audit=first:3:EBUSY",
    "storm": (
        "store.append=torn:1;store.read=first:2:EINTR;"
        "lease.claim=first:2:EAGAIN;lease.audit=torn:1;"
        "lease.release=first:1:EBUSY"
    ),
}


def accuracy_view(records: list[dict]) -> list[dict]:
    return [{k: r[k] for k in ACCURACY_FIELDS} for r in records]


@pytest.fixture(scope="module")
def matrix() -> ScenarioMatrix:
    return ScenarioMatrix.from_dict(MATRIX_SPEC)


@pytest.fixture(scope="module")
def sequential(matrix) -> list[dict]:
    """The fault-free ground truth every chaos run must reproduce."""
    return run_matrix(matrix, workers=1).records


def run_chaos_sweep(matrix, store_path, spec: str, seed: int = 0):
    """Three cooperating claim-loop workers under an installed fault schedule.

    Returns ``(reports, snapshot)``: the per-worker reports and the
    injector's per-point counters after the sweep.
    """
    reports: dict[str, object] = {}
    errors: list[BaseException] = []

    def worker(name: str) -> None:
        try:
            reports[name] = run_matrix(
                matrix,
                store=ResultStore(store_path),
                executor="serial",
                coordinate=CoordinateOptions(
                    worker_id=name, ttl=30.0, poll_interval=0.05
                ),
            )
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    policy = RetryPolicy(max_attempts=4, base_delay=0.01, sleep=lambda s: None)
    with use_policy(policy), inject(spec, seed=seed) as injector:
        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("w1", "w2", "w3")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        snapshot = injector.snapshot()
    assert not errors, f"workers crashed under {spec!r}: {errors}"
    assert set(reports) == {"w1", "w2", "w3"}
    return reports, snapshot


@pytest.mark.parametrize("name", sorted(CHAOS_CASES))
def test_cooperative_sweep_survives_fault_schedule(
    name, matrix, sequential, tmp_path
):
    spec = CHAOS_CASES[name]
    store_path = tmp_path / "store.jsonl"
    reports, snapshot = run_chaos_sweep(matrix, store_path, spec)

    # The schedule actually fired: this was a chaos run, not a clean one.
    fired = sum(point["fired"] for point in snapshot.values())
    assert fired > 0, f"{spec!r} never fired: {snapshot}"

    # Invariant 1: every scenario executed exactly once globally.
    assert sum(r.executed for r in reports.values()) == 4
    executes = [
        e["fingerprint"]
        for e in read_audit(str(store_path) + ".coord")
        if e["event"] == "execute"
    ]
    assert len(executes) == len(set(executes)) == 4

    # Invariant 2: the store reloads cleanly (healed tails are skippable
    # blanks or fragments, never corrupted records).
    reloaded = ResultStore(store_path)
    assert reloaded.fingerprints == {s.fingerprint() for s in matrix.expand()}

    # Invariant 3: results bit-identical to the fault-free run, from both
    # workers' points of view.
    for report in reports.values():
        assert accuracy_view(report.records) == accuracy_view(sequential)
        assert report.total == 4


def test_flaky_release_leaves_no_stuck_work(matrix, sequential, tmp_path):
    """Release faults may leave lease files behind — they must never block
    a later sweep or duplicate work."""
    store_path = tmp_path / "store.jsonl"
    run_chaos_sweep(matrix, store_path, "lease.release=first:8:EBUSY")
    coord = str(store_path) + ".coord"
    leftovers = list(iter_leases(coord))
    # A later worker over the same ledger finds only cached work, whether
    # or not unlink faults stranded lease files.
    report = run_matrix(
        matrix,
        store=ResultStore(store_path),
        executor="serial",
        coordinate=CoordinateOptions(worker_id="late", ttl=30.0),
    )
    assert report.executed == 0
    assert report.cached == 4
    assert accuracy_view(report.records) == accuracy_view(sequential)
    executes = [e for e in read_audit(coord) if e["event"] == "execute"]
    assert len(executes) == 4, f"leftover leases {leftovers} caused rework"


def test_chaos_run_is_reproducible(matrix, tmp_path):
    """Same spec + seed ⇒ the same faults fire at the same invocations.

    The schedule targets ``store.append`` only: the sweep makes exactly one
    put per scenario, so the tick stream is interleaving-independent.
    (Audit traffic is not — racy claim/skip decisions may add events.)
    """
    spec = "store.append=rate:0.5:EAGAIN"
    snapshots = []
    for round_ in ("a", "b"):
        store_path = tmp_path / f"store-{round_}.jsonl"
        _, snapshot = run_chaos_sweep(matrix, store_path, spec)
        snapshots.append(snapshot)
    first, second = snapshots
    assert first.keys() == second.keys()
    for point in first:
        assert first[point]["rule"] == second[point]["rule"]
        # Thread interleaving may shift *which* invocation a worker owns,
        # but the invocation count and the fired count are schedule
        # properties, reproducible run to run.
        assert first[point]["invocations"] == second[point]["invocations"]
        assert first[point]["fired"] == second[point]["fired"]
