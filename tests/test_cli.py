"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import build_parser, load_constraints, load_labels, main
from repro.dataset import Dataset, write_csv


@pytest.fixture
def workspace(tmp_path):
    """A small CSV + labels + constraints on disk."""
    rows = [["60612", "Chicago", "IL"]] * 12 + [["02139", "Cambridge", "MA"]] * 12
    rows.append(["60612", "Cxcago", "IL"])
    dataset = Dataset.from_rows(["zip", "city", "state"], rows)
    data_path = tmp_path / "data.csv"
    write_csv(dataset, data_path)

    labels_path = tmp_path / "labels.csv"
    with labels_path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["row", "attribute", "true_value"])
        for row in range(10):
            for attr in ("zip", "city", "state"):
                writer.writerow([row, attr, dataset.column(attr)[row]])
        writer.writerow([24, "city", "Chicago"])  # the labelled error

    constraints_path = tmp_path / "constraints.txt"
    constraints_path.write_text(
        "# zip determines city\n"
        "t1.zip == t2.zip & t1.city != t2.city\n"
        "\n"
        "t1.zip == t2.zip & t1.state != t2.state\n"
    )
    return tmp_path, data_path, labels_path, constraints_path


class TestFileLoaders:
    def test_load_constraints_skips_comments_and_blanks(self, workspace):
        _, _, _, constraints_path = workspace
        constraints = load_constraints(constraints_path)
        assert len(constraints) == 2

    def test_load_constraints_reports_line(self, tmp_path):
        bad = tmp_path / "c.txt"
        bad.write_text("not a constraint\n")
        with pytest.raises(SystemExit, match="c.txt:1"):
            load_constraints(bad)

    def test_load_labels(self, workspace):
        _, data_path, labels_path, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        training = load_labels(labels_path, dataset)
        assert len(training) == 31
        assert len(training.errors) == 1

    def test_load_labels_validates_attribute(self, workspace, tmp_path):
        _, data_path, _, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        bad = tmp_path / "bad.csv"
        bad.write_text("row,attribute,true_value\n0,nope,x\n")
        with pytest.raises(SystemExit, match="unknown attribute"):
            load_labels(bad, dataset)

    def test_load_labels_validates_row(self, workspace, tmp_path):
        _, data_path, _, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        bad = tmp_path / "bad.csv"
        bad.write_text("row,attribute,true_value\n999,city,x\n")
        with pytest.raises(SystemExit, match="out of range"):
            load_labels(bad, dataset)

    def test_load_labels_requires_header(self, workspace, tmp_path):
        _, data_path, _, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit, match="needs columns"):
            load_labels(bad, dataset)


class TestCommands:
    def test_detect_end_to_end(self, workspace):
        tmp_path, data_path, labels_path, constraints_path = workspace
        output = tmp_path / "out.csv"
        model_dir = tmp_path / "model"
        code = main(
            [
                "detect",
                "--input", str(data_path),
                "--labels", str(labels_path),
                "--constraints", str(constraints_path),
                "--output", str(output),
                "--save-model", str(model_dir),
                "--epochs", "5",
                "--embedding-dim", "6",
            ]
        )
        assert code == 0
        with output.open() as f:
            rows = list(csv.DictReader(f))
        assert rows
        assert set(rows[0]) == {"row", "attribute", "value", "error_probability", "flagged"}
        # Output is ranked by probability, descending.
        probs = [float(r["error_probability"]) for r in rows]
        assert probs == sorted(probs, reverse=True)
        assert (model_dir / "state.json").exists()

    def test_benchmark_command(self, capsys):
        code = main(
            [
                "benchmark",
                "--dataset", "soccer",
                "--rows", "120",
                "--epochs", "4",
                "--embedding-dim", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "soccer:" in out and "F1=" in out

    def test_policy_command(self, workspace, capsys):
        _, data_path, labels_path, _ = workspace
        code = main(
            [
                "policy",
                "--input", str(data_path),
                "--labels", str(labels_path),
                "--value", "Chicago",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "transformations learned" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


@pytest.fixture
def spec_file(tmp_path):
    """A fast declarative detector spec on disk."""
    path = tmp_path / "detector.toml"
    path.write_text(
        'schema = "repro.spec/v1"\n'
        "[detector]\n"
        "epochs = 5\n"
        "embedding_dim = 6\n"
        "seed = 0\n"
    )
    return path


class TestVersionFlag:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestSpecCommand:
    def test_validate_prints_fingerprint(self, spec_file, capsys):
        assert main(["spec", "validate", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "valid repro.spec/v1" in out
        assert "fingerprint:" in out

    def test_describe_prints_components(self, spec_file, capsys):
        assert main(["spec", "describe", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "epochs = 5   (override)" in out
        assert "<default Table 7 pipeline>" in out
        assert "calibrator:  platt" in out

    def test_validate_rejects_bad_spec(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('schema = "repro.spec/v1"\n[detector]\nepochs = -1\n')
        with pytest.raises(SystemExit, match="epochs must be a positive integer"):
            main(["spec", "validate", str(bad)])

    def test_validate_rejects_unknown_component(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('schema = "repro.spec/v1"\nfeaturizers = ["nope"]\n')
        with pytest.raises(SystemExit, match="unknown featurizer 'nope'"):
            main(["spec", "validate", str(bad)])


class TestDetectWithSpec:
    def test_detect_spec_and_json_report(self, workspace, spec_file):
        import json

        tmp_path, data_path, labels_path, constraints_path = workspace
        output = tmp_path / "out.csv"
        report = tmp_path / "report.json"
        code = main(
            [
                "detect",
                "--input", str(data_path),
                "--labels", str(labels_path),
                "--constraints", str(constraints_path),
                "--output", str(output),
                "--spec", str(spec_file),
                "--json", str(report),
            ]
        )
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro.detect/v1"
        assert payload["rows"] == 25
        assert payload["attributes"] == ["zip", "city", "state"]
        assert payload["scored_cells"] == len(payload["cells"])
        assert payload["flagged_cells"] == sum(c["flagged"] for c in payload["cells"])
        assert payload["spec_fingerprint"]
        probs = [c["error_probability"] for c in payload["cells"]]
        assert probs == sorted(probs, reverse=True)
        # The triage CSV and the JSON report agree on the flag count.
        with output.open() as f:
            flagged_csv = sum(int(r["flagged"]) for r in csv.DictReader(f))
        assert flagged_csv == payload["flagged_cells"]

    def test_detect_spec_matches_flags_bit_for_bit(self, workspace, spec_file):
        """--spec with the default composition reproduces the flag-built
        detector exactly (old imperative path ≡ new declarative path)."""
        tmp_path, data_path, labels_path, _ = workspace
        out_flags = tmp_path / "flags.csv"
        out_spec = tmp_path / "spec.csv"
        base = [
            "detect",
            "--input", str(data_path),
            "--labels", str(labels_path),
        ]
        assert main(base + ["--output", str(out_flags), "--epochs", "5", "--embedding-dim", "6"]) == 0
        assert main(base + ["--output", str(out_spec), "--spec", str(spec_file)]) == 0
        assert out_flags.read_text() == out_spec.read_text()

    def test_detect_rejects_bad_spec_file(self, workspace, tmp_path):
        _, data_path, labels_path, _ = workspace
        bad = tmp_path / "bad.toml"
        bad.write_text('schema = "repro.spec/v0"\n')
        with pytest.raises(SystemExit, match="detector spec error"):
            main(
                [
                    "detect",
                    "--input", str(data_path),
                    "--labels", str(labels_path),
                    "--output", str(tmp_path / "o.csv"),
                    "--spec", str(bad),
                ]
            )

    def test_benchmark_accepts_spec(self, spec_file, capsys):
        code = main(
            [
                "benchmark",
                "--dataset", "hospital",
                "--rows", "100",
                "--spec", str(spec_file),
            ]
        )
        assert code == 0
        assert "hospital:" in capsys.readouterr().out

    def test_invalid_flag_config_fails_fast(self, workspace, tmp_path):
        _, data_path, labels_path, _ = workspace
        with pytest.raises(SystemExit, match="invalid detector configuration"):
            main(
                [
                    "detect",
                    "--input", str(data_path),
                    "--labels", str(labels_path),
                    "--output", str(tmp_path / "o.csv"),
                    "--epochs", "-2",
                ]
            )
