"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import build_parser, load_constraints, load_labels, main
from repro.dataset import Dataset, write_csv


@pytest.fixture
def workspace(tmp_path):
    """A small CSV + labels + constraints on disk."""
    rows = [["60612", "Chicago", "IL"]] * 12 + [["02139", "Cambridge", "MA"]] * 12
    rows.append(["60612", "Cxcago", "IL"])
    dataset = Dataset.from_rows(["zip", "city", "state"], rows)
    data_path = tmp_path / "data.csv"
    write_csv(dataset, data_path)

    labels_path = tmp_path / "labels.csv"
    with labels_path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["row", "attribute", "true_value"])
        for row in range(10):
            for attr in ("zip", "city", "state"):
                writer.writerow([row, attr, dataset.column(attr)[row]])
        writer.writerow([24, "city", "Chicago"])  # the labelled error

    constraints_path = tmp_path / "constraints.txt"
    constraints_path.write_text(
        "# zip determines city\n"
        "t1.zip == t2.zip & t1.city != t2.city\n"
        "\n"
        "t1.zip == t2.zip & t1.state != t2.state\n"
    )
    return tmp_path, data_path, labels_path, constraints_path


class TestFileLoaders:
    def test_load_constraints_skips_comments_and_blanks(self, workspace):
        _, _, _, constraints_path = workspace
        constraints = load_constraints(constraints_path)
        assert len(constraints) == 2

    def test_load_constraints_reports_line(self, tmp_path):
        bad = tmp_path / "c.txt"
        bad.write_text("not a constraint\n")
        with pytest.raises(SystemExit, match="c.txt:1"):
            load_constraints(bad)

    def test_load_labels(self, workspace):
        _, data_path, labels_path, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        training = load_labels(labels_path, dataset)
        assert len(training) == 31
        assert len(training.errors) == 1

    def test_load_labels_validates_attribute(self, workspace, tmp_path):
        _, data_path, _, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        bad = tmp_path / "bad.csv"
        bad.write_text("row,attribute,true_value\n0,nope,x\n")
        with pytest.raises(SystemExit, match="unknown attribute"):
            load_labels(bad, dataset)

    def test_load_labels_validates_row(self, workspace, tmp_path):
        _, data_path, _, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        bad = tmp_path / "bad.csv"
        bad.write_text("row,attribute,true_value\n999,city,x\n")
        with pytest.raises(SystemExit, match="out of range"):
            load_labels(bad, dataset)

    def test_load_labels_requires_header(self, workspace, tmp_path):
        _, data_path, _, _ = workspace
        from repro.dataset import read_csv

        dataset = read_csv(data_path)
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit, match="needs columns"):
            load_labels(bad, dataset)


class TestCommands:
    def test_detect_end_to_end(self, workspace):
        tmp_path, data_path, labels_path, constraints_path = workspace
        output = tmp_path / "out.csv"
        model_dir = tmp_path / "model"
        code = main(
            [
                "detect",
                "--input", str(data_path),
                "--labels", str(labels_path),
                "--constraints", str(constraints_path),
                "--output", str(output),
                "--save-model", str(model_dir),
                "--epochs", "5",
                "--embedding-dim", "6",
            ]
        )
        assert code == 0
        with output.open() as f:
            rows = list(csv.DictReader(f))
        assert rows
        assert set(rows[0]) == {"row", "attribute", "value", "error_probability", "flagged"}
        # Output is ranked by probability, descending.
        probs = [float(r["error_probability"]) for r in rows]
        assert probs == sorted(probs, reverse=True)
        assert (model_dir / "state.json").exists()

    def test_benchmark_command(self, capsys):
        code = main(
            [
                "benchmark",
                "--dataset", "soccer",
                "--rows", "120",
                "--epochs", "4",
                "--embedding-dim", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "soccer:" in out and "F1=" in out

    def test_policy_command(self, workspace, capsys):
        _, data_path, labels_path, _ = workspace
        code = main(
            [
                "policy",
                "--input", str(data_path),
                "--labels", str(labels_path),
                "--value", "Chicago",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "transformations learned" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
