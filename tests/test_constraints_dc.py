"""Unit tests for denial-constraint representation and parsing."""

import pytest

from repro.constraints import (
    DenialConstraint,
    Predicate,
    functional_dependency,
    parse_denial_constraint,
)


class TestPredicate:
    def test_attribute_comparison(self):
        p = Predicate("zip", "==", right_attr="zip")
        assert p.holds({"zip": "1"}, {"zip": "1"})
        assert not p.holds({"zip": "1"}, {"zip": "2"})

    def test_constant_comparison(self):
        p = Predicate("state", "!=", constant="IL")
        assert p.holds({"state": "MA"}, {})
        assert not p.holds({"state": "IL"}, {})

    def test_ordering_operators(self):
        p = Predicate("score", "<", right_attr="score")
        assert p.holds({"score": "10"}, {"score": "20"})

    def test_requires_exactly_one_rhs(self):
        with pytest.raises(ValueError):
            Predicate("a", "==")
        with pytest.raises(ValueError):
            Predicate("a", "==", right_attr="b", constant="c")

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Predicate("a", "~=", right_attr="b")

    def test_is_equality_join(self):
        assert Predicate("a", "==", right_attr="a").is_equality_join
        assert not Predicate("a", "==", constant="x").is_equality_join
        assert not Predicate("a", "!=", right_attr="a").is_equality_join

    def test_attributes(self):
        assert Predicate("a", "<", right_attr="b").attributes() == {"a", "b"}
        assert Predicate("a", "==", constant="x").attributes() == {"a"}


class TestDenialConstraint:
    def test_fd_violation(self, zip_fd):
        t1 = {"zip": "60612", "city": "Chicago"}
        t2 = {"zip": "60612", "city": "Cicago"}
        t3 = {"zip": "60614", "city": "Chicago"}
        assert zip_fd.violated_by(t1, t2)
        assert not zip_fd.violated_by(t1, t3)
        assert not zip_fd.violated_by(t1, t1)

    def test_needs_predicates(self):
        with pytest.raises(ValueError):
            DenialConstraint(())

    def test_attributes(self, zip_fd):
        assert zip_fd.attributes() == {"zip", "city"}

    def test_equality_join_attrs(self, zip_fd):
        assert zip_fd.equality_join_attrs() == ["zip"]

    def test_residual_predicates(self, zip_fd):
        residual = zip_fd.residual_predicates()
        assert len(residual) == 1
        assert residual[0].op == "!="

    def test_str(self, zip_fd):
        assert "zip" in str(zip_fd)


class TestFunctionalDependency:
    def test_multi_attribute_lhs(self):
        fd = functional_dependency(["name", "surname"], "birth")
        assert fd.equality_join_attrs() == ["name", "surname"]

    def test_rhs_in_lhs_rejected(self):
        with pytest.raises(ValueError):
            functional_dependency(["a", "b"], "a")

    def test_default_name(self):
        assert functional_dependency("zip", "city").name == "zip->city"


class TestParser:
    def test_parse_fd_shape(self):
        dc = parse_denial_constraint("t1.Zip == t2.Zip & t1.City != t2.City")
        assert dc.violated_by(
            {"Zip": "1", "City": "A"}, {"Zip": "1", "City": "B"}
        )

    def test_parse_constant(self):
        dc = parse_denial_constraint("t1.State == 'XX'")
        assert dc.violated_by({"State": "XX"}, {})

    def test_parse_double_quotes(self):
        dc = parse_denial_constraint('t1.State == "IL" & t1.Zip != t2.Zip')
        assert len(dc.predicates) == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_denial_constraint("zip equals city")

    def test_roundtrip_name(self):
        text = "t1.A == t2.A & t1.B != t2.B"
        assert parse_denial_constraint(text).name == text
