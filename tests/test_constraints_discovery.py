"""Unit tests for α-noisy constraint discovery (Appendix A.2.2)."""

import pytest

from repro.constraints.discovery import discover_noisy_constraints, score_candidate_fds
from repro.dataset import Dataset


@pytest.fixture
def noisy_dataset():
    """k->v holds ~80% of pairs within groups; k->w barely holds."""
    rows = []
    for i in range(20):
        key = "a" if i < 10 else "b"
        v = "v1" if (i % 10) < 8 else f"v{i}"
        w = f"w{i % 5}"
        rows.append([key, v, w])
    return Dataset.from_rows(["k", "v", "w"], rows)


class TestScoreCandidates:
    def test_scores_cover_all_pairs(self, noisy_dataset):
        scored = score_candidate_fds(noisy_dataset, max_lhs_cardinality=20)
        names = {s.constraint.name for s in scored}
        assert "k->v" in names and "k->w" in names

    def test_alpha_in_unit_interval(self, noisy_dataset):
        for s in score_candidate_fds(noisy_dataset, max_lhs_cardinality=20):
            assert 0.0 <= s.alpha <= 1.0

    def test_high_cardinality_lhs_skipped(self, noisy_dataset):
        scored = score_candidate_fds(noisy_dataset, max_lhs_cardinality=3)
        lhs_attrs = {s.constraint.equality_join_attrs()[0] for s in scored}
        assert "v" not in lhs_attrs  # v has 12 distinct values


class TestDiscoverNoisy:
    def test_band_filtering(self, noisy_dataset):
        candidates = score_candidate_fds(noisy_dataset, max_lhs_cardinality=20)
        # Constraints in a mid band are neither perfect nor hopeless.
        found = discover_noisy_constraints(
            noisy_dataset, (0.5, 0.999), candidates=candidates
        )
        engine_alphas = {
            s.constraint.name: s.alpha for s in candidates
        }
        for dc in found:
            assert 0.5 < engine_alphas[dc.name] <= 0.999

    def test_limit(self, noisy_dataset):
        found = discover_noisy_constraints(noisy_dataset, (0.0, 1.0), limit=1)
        assert len(found) <= 1

    def test_invalid_range(self, noisy_dataset):
        with pytest.raises(ValueError):
            discover_noisy_constraints(noisy_dataset, (0.9, 0.9))
