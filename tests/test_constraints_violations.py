"""Unit tests for the violation engine."""

import numpy as np
import pytest

from repro.constraints import (
    DenialConstraint,
    Predicate,
    ViolationEngine,
    functional_dependency,
)
from repro.dataset import Cell, Dataset


class TestTupleViolationCounts:
    def test_fd_violations(self, zip_dataset, zip_fd):
        engine = ViolationEngine([zip_fd])
        counts = engine.tuple_violation_counts(zip_dataset)
        # Rows 0 and 1 share zip 60612 but disagree on city.
        assert counts[0, 0] == 1
        assert counts[1, 0] == 1
        assert counts[2:, 0].sum() == 0

    def test_clean_dataset_has_none(self, zip_clean, zip_fd):
        engine = ViolationEngine([zip_fd])
        assert ViolationEngine([zip_fd]).tuple_violation_counts(zip_clean).sum() == 0

    def test_multiple_constraints_columns(self, zip_dataset):
        fds = [functional_dependency("zip", "city"), functional_dependency("zip", "state")]
        counts = ViolationEngine(fds).tuple_violation_counts(zip_dataset)
        assert counts.shape == (6, 2)
        assert counts[:, 1].sum() == 0  # zip -> state holds

    def test_violation_count_scales_with_group(self):
        # Three tuples with same key, one deviant -> deviant counted twice.
        d = Dataset.from_rows(
            ["k", "v"], [["a", "1"], ["a", "1"], ["a", "2"]]
        )
        counts = ViolationEngine([functional_dependency("k", "v")]).tuple_violation_counts(d)
        assert counts[2, 0] == 2
        assert counts[0, 0] == 1

    def test_join_free_constraint_scan(self):
        # "no two tuples may both have score < the other" style constant DC:
        # t1.v == '1' (single-predicate constant constraint, no join key).
        dc = DenialConstraint((Predicate("v", "==", constant="1"),), name="const")
        d = Dataset.from_rows(["v"], [["1"], ["2"], ["1"]])
        counts = ViolationEngine([dc]).tuple_violation_counts(d)
        # Pairs (0,1): t0 satisfies; (0,2): both; (1,2): t2 satisfies.
        assert counts.sum() > 0


class TestViolatingCells:
    def test_flags_all_participating_attributes(self, zip_dataset, zip_fd):
        flagged = ViolationEngine([zip_fd]).violating_cells(zip_dataset)
        assert Cell(0, "zip") in flagged
        assert Cell(0, "city") in flagged
        assert Cell(1, "zip") in flagged
        assert Cell(1, "city") in flagged
        assert Cell(0, "state") not in flagged

    def test_empty_constraints(self, zip_dataset):
        assert ViolationEngine([]).violating_cells(zip_dataset) == set()


class TestCellViolationMatrix:
    def test_attribute_masking(self, zip_dataset, zip_fd):
        matrix = ViolationEngine([zip_fd]).cell_violation_matrix(zip_dataset)
        assert matrix["zip"][0, 0] == 1
        assert matrix["city"][1, 0] == 1
        assert matrix["state"].sum() == 0


class TestSatisfactionRatio:
    def test_perfect_constraint(self, zip_clean, zip_fd):
        engine = ViolationEngine([])
        assert engine.satisfaction_ratio(zip_clean, zip_fd) == 1.0

    def test_violated_constraint_below_one(self, zip_dataset, zip_fd):
        engine = ViolationEngine([])
        ratio = engine.satisfaction_ratio(zip_dataset, zip_fd)
        assert ratio == pytest.approx(1.0 - 1 / 15)  # 1 violating pair of C(6,2)

    def test_single_row_dataset(self, zip_fd):
        d = Dataset.from_rows(["zip", "city", "state"], [["1", "a", "s"]])
        assert ViolationEngine([]).satisfaction_ratio(d, zip_fd) == 1.0
