"""Tests for :mod:`repro.coordination`: leases, heartbeats, the hardened
concurrent-appender :class:`ResultStore`, and the coordinated claim loop."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from pathlib import Path

import pytest

from repro.coordination import (
    CoordinationError,
    HeartbeatThread,
    WorkQueue,
    coordination_dir,
    default_worker_id,
    iter_leases,
    read_audit,
)
from repro.evaluation.matrix import CoordinateOptions, ScenarioMatrix, run_matrix
from repro.evaluation.store import ResultStore

FP_A = "a" * 64
FP_B = "b" * 64


class FakeClock:
    """An advanceable wall clock so TTL logic needs no real sleeps."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


# ---------------------------------------------------------------------------
# WorkQueue: claim / renew / release / reclaim
# ---------------------------------------------------------------------------


class TestWorkQueue:
    def test_claim_is_exclusive(self, tmp_path):
        q1 = WorkQueue(tmp_path, worker_id="w1")
        q2 = WorkQueue(tmp_path, worker_id="w2")
        assert q1.claim(FP_A)
        assert not q2.claim(FP_A)
        assert q1.held() == {FP_A}
        assert q2.held() == set()

    def test_release_frees_the_fingerprint(self, tmp_path):
        q1 = WorkQueue(tmp_path, worker_id="w1")
        q2 = WorkQueue(tmp_path, worker_id="w2")
        assert q1.claim(FP_A)
        q1.release(FP_A, event="complete")
        assert q1.held() == set()
        assert q2.claim(FP_A)

    def test_lease_payload_round_trip(self, tmp_path, clock):
        q = WorkQueue(tmp_path, worker_id="w1", clock=clock)
        q.claim(FP_A)
        info = q.read_lease(FP_A)
        assert info is not None
        assert info.worker == "w1"
        assert info.fingerprint == FP_A
        assert info.claimed_at == info.renewed_at == clock.now

    def test_renew_refreshes_heartbeat_only(self, tmp_path, clock):
        q = WorkQueue(tmp_path, worker_id="w1", clock=clock)
        q.claim(FP_A)
        claimed = clock.now
        clock.advance(30.0)
        assert q.renew(FP_A)
        info = q.read_lease(FP_A)
        assert info.claimed_at == claimed
        assert info.renewed_at == clock.now

    def test_renew_detects_a_reclaimed_lease(self, tmp_path, clock):
        q1 = WorkQueue(tmp_path, worker_id="w1", clock=clock)
        q2 = WorkQueue(tmp_path, worker_id="w2", clock=clock)
        q1.claim(FP_A)
        # w2 reclaims behind w1's back (as if w1 slept past the TTL).
        os.unlink(q1.lease_path(FP_A))
        q2.claim(FP_A)
        assert not q1.renew(FP_A)
        assert q1.held() == set()
        # The usurper's lease is untouched.
        assert q2.read_lease(FP_A).worker == "w2"
        events = [e["event"] for e in read_audit(tmp_path) if e["worker"] == "w1"]
        assert "lost" in events

    def test_renew_without_claim_is_false(self, tmp_path):
        q = WorkQueue(tmp_path, worker_id="w1")
        assert not q.renew(FP_A)

    def test_reclaim_stale_lease(self, tmp_path, clock):
        q1 = WorkQueue(tmp_path, worker_id="w1", ttl=60.0, clock=clock)
        q2 = WorkQueue(tmp_path, worker_id="w2", ttl=60.0, clock=clock)
        q1.claim(FP_A)
        clock.advance(61.0)
        assert q2.reclaim_stale() == [FP_A]
        assert q2.read_lease(FP_A) is None
        assert q2.claim(FP_A)
        reclaims = [e for e in read_audit(tmp_path) if e["event"] == "reclaim"]
        assert len(reclaims) == 1
        assert reclaims[0]["stale_worker"] == "w1"
        assert reclaims[0]["worker"] == "w2"

    def test_fresh_lease_is_not_reclaimed(self, tmp_path, clock):
        q1 = WorkQueue(tmp_path, worker_id="w1", ttl=60.0, clock=clock)
        q2 = WorkQueue(tmp_path, worker_id="w2", ttl=60.0, clock=clock)
        q1.claim(FP_A)
        clock.advance(59.0)
        assert q2.reclaim_stale() == []
        assert q2.read_lease(FP_A).worker == "w1"

    def test_renewal_defeats_reclaim(self, tmp_path, clock):
        q1 = WorkQueue(tmp_path, worker_id="w1", ttl=60.0, clock=clock)
        q2 = WorkQueue(tmp_path, worker_id="w2", ttl=60.0, clock=clock)
        q1.claim(FP_A)
        for _ in range(10):  # heartbeat every 30s for 5 minutes
            clock.advance(30.0)
            assert q1.renew(FP_A)
        assert q2.reclaim_stale() == []

    def test_own_stale_lease_is_not_reclaimed(self, tmp_path, clock):
        q1 = WorkQueue(tmp_path, worker_id="w1", ttl=60.0, clock=clock)
        q1.claim(FP_A)
        clock.advance(120.0)
        assert q1.reclaim_stale() == []

    def test_reclaim_scoped_to_fingerprints(self, tmp_path, clock):
        q1 = WorkQueue(tmp_path, worker_id="w1", ttl=60.0, clock=clock)
        q2 = WorkQueue(tmp_path, worker_id="w2", ttl=60.0, clock=clock)
        q1.claim(FP_A)
        q1.claim(FP_B)
        clock.advance(61.0)
        assert q2.reclaim_stale([FP_B]) == [FP_B]
        assert q2.read_lease(FP_A).worker == "w1"

    def test_partially_written_lease_reads_as_fresh(self, tmp_path, clock):
        q = WorkQueue(tmp_path, worker_id="w1", ttl=60.0, clock=clock)
        # A racing claimer created the file but has not written it yet.
        path = q.lease_path(FP_A)
        path.touch()
        info = q.read_lease(FP_A)
        assert info.worker == "(claiming)"
        # mtime is wall-clock "now", far beyond the fake clock: never stale.
        assert q.reclaim_stale() == []

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(CoordinationError, match="TTL"):
            WorkQueue(tmp_path, ttl=0.0)

    def test_iter_leases(self, tmp_path, clock):
        q = WorkQueue(tmp_path, worker_id="w1", clock=clock)
        q.claim(FP_A)
        q.claim(FP_B)
        assert {i.fingerprint for i in iter_leases(tmp_path)} == {FP_A, FP_B}
        assert [i.fingerprint for i in iter_leases(tmp_path, [FP_B])] == [FP_B]
        assert list(iter_leases(tmp_path / "nope")) == []

    def test_default_worker_id_has_pid(self):
        assert str(os.getpid()) in default_worker_id()

    def test_coordination_dir_convention(self):
        assert coordination_dir("results.jsonl") == Path("results.jsonl.coord")

    def test_audit_is_appended_per_transition(self, tmp_path):
        q = WorkQueue(tmp_path, worker_id="w1")
        q.claim(FP_A)
        q.audit("execute", FP_A)
        q.release(FP_A, event="complete")
        events = [(e["event"], e["fingerprint"]) for e in read_audit(tmp_path)]
        assert events == [("claim", FP_A), ("execute", FP_A), ("complete", FP_A)]


# ---------------------------------------------------------------------------
# HeartbeatThread
# ---------------------------------------------------------------------------


class TestHeartbeat:
    def test_keeps_lease_fresh_through_a_long_scenario(self, tmp_path):
        q = WorkQueue(tmp_path, worker_id="w1", ttl=0.4)
        observer = WorkQueue(tmp_path, worker_id="w2", ttl=0.4)
        q.claim(FP_A)
        with HeartbeatThread(q, interval=0.05) as hb:
            time.sleep(0.6)  # well past the TTL without renewals
            assert observer.reclaim_stale() == []
            assert hb.renewals >= 2
        info = observer.read_lease(FP_A)
        assert info.renewed_at > info.claimed_at

    def test_records_lost_leases(self, tmp_path):
        q = WorkQueue(tmp_path, worker_id="w1", ttl=0.4)
        usurper = WorkQueue(tmp_path, worker_id="w2", ttl=0.4)
        q.claim(FP_A)
        os.unlink(q.lease_path(FP_A))
        usurper.claim(FP_A)
        with HeartbeatThread(q, interval=0.05) as hb:
            time.sleep(0.2)
        assert FP_A in hb.lost
        assert q.held() == set()

    def test_interval_must_undercut_ttl(self, tmp_path):
        q = WorkQueue(tmp_path, worker_id="w1", ttl=1.0)
        with pytest.raises(CoordinationError, match="below the lease"):
            HeartbeatThread(q, interval=1.0)
        with pytest.raises(CoordinationError, match="positive"):
            HeartbeatThread(q, interval=0.0)

    def test_default_interval_is_quarter_ttl(self, tmp_path):
        q = WorkQueue(tmp_path, worker_id="w1", ttl=60.0)
        assert HeartbeatThread(q).interval == 15.0


# ---------------------------------------------------------------------------
# ResultStore hardening: refresh / concurrent appenders / compact
# ---------------------------------------------------------------------------


def _append_records(path: str, prefix: str, count: int, barrier) -> None:
    """Subprocess body: hammer the shared store with appends."""
    store = ResultStore(path)
    barrier.wait()  # maximise interleaving across the processes
    for i in range(count):
        store.put({"fingerprint": f"{prefix}-{i:04d}", "payload": "x" * (i % 97)})


class TestResultStoreConcurrency:
    def test_two_processes_append_without_shearing(self, tmp_path):
        """Satellite: single-write O_APPEND records survive interleaving."""
        path = tmp_path / "store.jsonl"
        count = 200
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_append_records, args=(str(path), prefix, count, barrier))
            for prefix in ("p0", "p1")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        # Every line parses — no sheared/interleaved records at all.
        lines = path.read_bytes().decode("utf-8").splitlines()
        assert len(lines) == 2 * count
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"fingerprint", "payload"}
        store = ResultStore(path)
        assert store.skipped_lines == 0
        assert len(store) == 2 * count

    def test_refresh_sees_other_writers(self, tmp_path):
        path = tmp_path / "store.jsonl"
        reader = ResultStore(path)
        writer = ResultStore(path)
        writer.put({"fingerprint": FP_A})
        assert FP_A not in reader
        assert reader.refresh() == 1
        assert FP_A in reader
        assert reader.refresh() == 0  # idempotent when nothing new

    def test_refresh_ignores_unterminated_tail_until_complete(self, tmp_path):
        path = tmp_path / "store.jsonl"
        reader = ResultStore(path)
        writer = ResultStore(path)
        writer.put({"fingerprint": FP_A})
        assert reader.refresh() == 1
        # A writer is mid-append: the line has no terminator yet.
        half = json.dumps({"fingerprint": FP_B})
        with path.open("a") as f:
            f.write(half[:20])
        assert reader.refresh() == 0
        assert FP_B not in reader
        with path.open("a") as f:
            f.write(half[20:] + "\n")
        assert reader.refresh() == 1
        assert FP_B in reader
        assert reader.skipped_lines == 0

    def test_load_heals_killed_run_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put({"fingerprint": FP_A})
        with path.open("a") as f:
            f.write('{"fingerprint": "half-writ')  # kill -9 mid-append
        reloaded = ResultStore(path)
        assert reloaded.skipped_lines == 1
        assert reloaded.fingerprints == {FP_A}
        # The tail was newline-terminated, so the next append starts clean
        # and is visible to fresh loads.
        reloaded.put({"fingerprint": FP_B})
        third = ResultStore(path)
        assert third.fingerprints == {FP_A, FP_B}

    def test_missing_preserves_order(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put({"fingerprint": FP_B})
        assert store.missing([FP_A, FP_B, "c" * 64]) == [FP_A, "c" * 64]

    def test_compact_keeps_latest_wins_only(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for round_ in range(5):
            store.put({"fingerprint": FP_A, "round": round_})
            store.put({"fingerprint": FP_B, "round": round_})
        with path.open("a") as f:
            f.write("not json at all\n")
        assert len(path.read_bytes().decode().splitlines()) == 11
        store2 = ResultStore(path)
        kept, dropped = store2.compact()
        assert (kept, dropped) == (2, 9)
        lines = path.read_bytes().decode().splitlines()
        assert len(lines) == 2
        assert {json.loads(l)["round"] for l in lines} == {4}
        # The compacted store keeps serving and appending normally.
        assert store2.get(FP_A)["round"] == 4
        store2.put({"fingerprint": FP_A, "round": 99})
        assert ResultStore(path).get(FP_A)["round"] == 99
        assert ResultStore(path).skipped_lines == 0

    def test_compact_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.compact() == (0, 0)


# ---------------------------------------------------------------------------
# Coordinated run_matrix: the claim-loop executor mode
# ---------------------------------------------------------------------------

MATRIX_SPEC = {
    "datasets": [{"name": "hospital", "rows": 60}],
    "error_profiles": ["native"],
    "label_budgets": [0.1, 0.2],
    "methods": ["cv", "od"],
    "trials": 2,
    "seed": 5,
}

ACCURACY_FIELDS = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")


def accuracy_view(records: list[dict]) -> list[dict]:
    return [{k: r[k] for k in ACCURACY_FIELDS} for r in records]


@pytest.fixture(scope="module")
def matrix() -> ScenarioMatrix:
    return ScenarioMatrix.from_dict(MATRIX_SPEC)


@pytest.fixture(scope="module")
def sequential(matrix) -> list[dict]:
    return run_matrix(matrix, workers=1).records


class TestCoordinatedRunMatrix:
    def test_requires_a_store(self, matrix):
        with pytest.raises(ValueError, match="ledger"):
            run_matrix(matrix, coordinate=CoordinateOptions())

    def test_single_worker_drains_and_matches_sequential(
        self, matrix, sequential, tmp_path
    ):
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_matrix(
            matrix,
            store=store,
            executor="serial",
            coordinate=CoordinateOptions(worker_id="solo", ttl=30.0),
        )
        assert report.executed == 4
        assert report.cached == 0
        assert accuracy_view(report.records) == accuracy_view(sequential)
        assert report.coordination["worker"] == "solo"
        assert report.coordination["remote"] == 0
        # All leases released; audit shows one execution per scenario.
        assert list(iter_leases(report.coordination["dir"])) == []
        executes = [
            e["fingerprint"]
            for e in read_audit(report.coordination["dir"])
            if e["event"] == "execute"
        ]
        assert len(executes) == len(set(executes)) == 4

    def test_two_cooperating_workers_split_the_matrix(
        self, matrix, sequential, tmp_path
    ):
        store_path = tmp_path / "store.jsonl"
        reports: dict[str, object] = {}
        errors: list[BaseException] = []

        def worker(name: str) -> None:
            try:
                # Each worker gets its own ResultStore handle (one per
                # process in real deployments; ResultStore is not shared
                # across threads).
                reports[name] = run_matrix(
                    matrix,
                    store=ResultStore(store_path),
                    executor="serial",
                    coordinate=CoordinateOptions(
                        worker_id=name, ttl=30.0, poll_interval=0.05
                    ),
                )
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,)) for name in ("w1", "w2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors
        assert set(reports) == {"w1", "w2"}

        # Cooperative split: every scenario executed exactly once globally.
        total_executed = sum(r.executed for r in reports.values())
        assert total_executed == 4
        executes = [
            e["fingerprint"]
            for e in read_audit(str(store_path) + ".coord")
            if e["event"] == "execute"
        ]
        assert len(executes) == len(set(executes)) == 4

        # Both workers return the COMPLETE matrix, bit-identical to
        # sequential, regardless of who ran what.
        for report in reports.values():
            assert accuracy_view(report.records) == accuracy_view(sequential)
            assert report.total == 4

    def test_completed_work_is_never_reclaimed_across_restarts(
        self, matrix, sequential, tmp_path
    ):
        store_path = tmp_path / "store.jsonl"
        first = run_matrix(
            matrix,
            store=ResultStore(store_path),
            executor="serial",
            coordinate=CoordinateOptions(worker_id="w1", ttl=30.0),
        )
        assert first.executed == 4
        # A later worker (fresh process, same store) finds nothing to do.
        second = run_matrix(
            matrix,
            store=ResultStore(store_path),
            executor="serial",
            coordinate=CoordinateOptions(worker_id="w2", ttl=30.0),
        )
        assert second.executed == 0
        assert second.cached == 4
        assert second.coordination["initially_cached"] == 4
        assert accuracy_view(second.records) == accuracy_view(sequential)
        executes = [
            e for e in read_audit(str(store_path) + ".coord") if e["event"] == "execute"
        ]
        assert len(executes) == 4  # w2 added none

    def test_stale_lease_from_dead_worker_is_reclaimed(
        self, matrix, sequential, tmp_path
    ):
        """A lease with an ancient heartbeat must not block the sweep."""
        store_path = tmp_path / "store.jsonl"
        coord = str(store_path) + ".coord"
        victim_fp = matrix.expand()[0].fingerprint()
        # Forge a dead worker's lease: claimed long ago, never renewed.
        dead = WorkQueue(coord, worker_id="dead", ttl=0.5, clock=lambda: 1.0)
        dead.claim(victim_fp)
        report = run_matrix(
            matrix,
            store=ResultStore(store_path),
            executor="serial",
            coordinate=CoordinateOptions(worker_id="survivor", ttl=0.5, poll_interval=0.05),
        )
        assert report.executed == 4
        assert accuracy_view(report.records) == accuracy_view(sequential)
        reclaims = [e for e in read_audit(coord) if e["event"] == "reclaim"]
        assert len(reclaims) == 1
        assert reclaims[0]["fingerprint"] == victim_fp
        assert reclaims[0]["stale_worker"] == "dead"
        assert reclaims[0]["worker"] == "survivor"

    def test_coordinated_thread_pool_drains(self, matrix, sequential, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_matrix(
            matrix,
            store=store,
            workers=2,
            executor="thread",
            coordinate=CoordinateOptions(worker_id="pool", ttl=30.0, poll_interval=0.05),
        )
        assert report.executed == 4
        assert report.workers == 2
        assert accuracy_view(report.records) == accuracy_view(sequential)

    def test_on_result_distinguishes_cached_from_run(
        self, matrix, sequential, tmp_path
    ):
        store_path = tmp_path / "store.jsonl"
        # Half the matrix was completed before this worker ever started.
        pre = ResultStore(store_path)
        for record in sequential[:2]:
            pre.put(record)
        pre_fps = {r["fingerprint"] for r in sequential[:2]}
        seen: list[tuple[str, str]] = []

        def observe(record: dict) -> None:
            source = (
                "remote"
                if record.get("remote")
                else "cached" if record.get("cached") else "run"
            )
            seen.append((record["fingerprint"], source))

        report = run_matrix(
            matrix,
            store=ResultStore(store_path),
            executor="serial",
            coordinate=CoordinateOptions(worker_id="local", ttl=30.0),
            on_result=observe,
        )
        assert report.executed == 2
        sources = dict(seen)
        for fp in pre_fps:
            assert sources[fp] == "cached"  # present before this worker began
        assert sorted(s for _, s in seen) == ["cached", "cached", "run", "run"]
