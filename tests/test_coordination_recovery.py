"""Crash-recovery test: a cooperative worker is SIGKILL'd mid-scenario and
a survivor reclaims its stale lease, completing the sweep bit-identically.

Worker A is a real ``repro sweep --coordinate`` subprocess (so the kill is
a kill: no atexit handlers, no lease cleanup — exactly the failure the
lease TTL exists for).  Worker B runs in-process for easy assertions.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.coordination import read_audit
from repro.evaluation.matrix import CoordinateOptions, ScenarioMatrix, run_matrix
from repro.evaluation.store import ResultStore

REPO = Path(__file__).resolve().parent.parent

#: Per-scenario sleep: long enough that the kill lands mid-scenario, short
#: enough to keep the test quick.
DELAY = 0.6

SPEC_TOML = f"""
[matrix]
datasets = [{{ name = "hospital", rows = 40 }}]
error_profiles = ["native"]
label_budgets = [0.1, 0.2, 0.3]
methods = [{{ name = "custom_components:slow_unique_flagger", delay = {DELAY} }}]
trials = 1
seed = 11
"""


def subprocess_env() -> dict[str, str]:
    """The subprocess needs ``repro`` and ``custom_components`` importable."""
    env = dict(os.environ)
    extra = f"{REPO / 'src'}{os.pathsep}{REPO / 'tests'}"
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{extra}{os.pathsep}{existing}" if existing else extra
    return env


def wait_for_lease(lease_dir: Path, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if lease_dir.is_dir() and any(lease_dir.glob("*.lease")):
            return
        time.sleep(0.02)
    raise AssertionError(f"worker A never claimed a lease under {lease_dir}")


def wait_for_audit_bytes(audit_path: Path, timeout: float = 60.0) -> None:
    """Wait until worker A has appended at least one full audit line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if audit_path.is_file() and b"\n" in audit_path.read_bytes():
            return
        time.sleep(0.02)
    raise AssertionError(f"worker A never wrote an audit line to {audit_path}")


def test_killed_worker_is_reclaimed_and_sweep_completes(tmp_path):
    spec_path = tmp_path / "spec.toml"
    spec_path.write_text(SPEC_TOML, encoding="utf-8")
    store_path = tmp_path / "store.jsonl"
    coord = Path(f"{store_path}.coord")

    matrix = ScenarioMatrix.from_file(spec_path)
    fingerprints = [s.fingerprint() for s in matrix.expand()]
    assert len(fingerprints) == 3

    # Worker A: a real CLI worker, killed the moment it holds a lease.
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep",
            "--spec", str(spec_path),
            "--store", str(store_path),
            "--coordinate",
            "--worker-id", "A",
            "--lease-ttl", "2",
            "--executor", "serial",
        ],
        env=subprocess_env(),
        cwd=tmp_path,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        wait_for_lease(coord / "leases")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    # A died holding a lease: no release event ever made it to the audit
    # log, so the lease file is still on disk with a silent heartbeat.
    leftover = list((coord / "leases").glob("*.lease"))
    assert leftover, "SIGKILL should have left A's lease behind"

    # Worker B: picks up the survivors, then reclaims A's stale lease.
    report = run_matrix(
        matrix,
        store=ResultStore(store_path),
        executor="serial",
        coordinate=CoordinateOptions(worker_id="B", ttl=1.5, poll_interval=0.1),
    )

    # The sweep completed despite the crash.
    final = ResultStore(store_path)
    assert final.missing(fingerprints) == []
    assert report.total == 3
    assert list((coord / "leases").glob("*.lease")) == []

    # B reclaimed at least one of A's leases (A may have finished zero or
    # more scenarios before the kill; whatever it held was reclaimed).
    events = read_audit(coord)
    reclaims = [e for e in events if e["event"] == "reclaim"]
    assert reclaims, f"no reclaim in audit log: {[e['event'] for e in events]}"
    assert all(e["stale_worker"] == "A" for e in reclaims)
    assert all(e["worker"] == "B" for e in reclaims)

    # Crash, reclaim, and mixed ownership left no trace in the results:
    # bit-identical to a plain sequential run.
    sequential = run_matrix(matrix, workers=1).records
    accuracy = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")
    view = lambda records: [{k: r[k] for k in accuracy} for r in records]
    assert view(report.records) == view(sequential)


def test_killed_worker_under_active_fault_schedules(tmp_path):
    """SIGKILL recovery while *both* workers run under fault injection.

    Worker A is a CLI subprocess injecting from the inherited
    ``REPRO_FAULTS`` environment (no code cooperation — the production
    fleet path), including a torn first audit write; it dies by SIGKILL
    holding a lease.  Worker B survives its own in-process schedule and
    completes the sweep.  Duplicate executions are permitted only for
    fingerprints the reclaim actually transferred.
    """
    from repro.faults import RetryPolicy, inject, use_policy

    spec_path = tmp_path / "spec.toml"
    spec_path.write_text(SPEC_TOML, encoding="utf-8")
    store_path = tmp_path / "store.jsonl"
    coord = Path(f"{store_path}.coord")

    matrix = ScenarioMatrix.from_file(spec_path)
    fingerprints = [s.fingerprint() for s in matrix.expand()]

    env = subprocess_env()
    env["REPRO_FAULTS"] = (
        "lease.audit=torn:1;lease.claim=first:1:EAGAIN;"
        "store.append=first:1:EAGAIN"
    )
    env["REPRO_RETRY_BASE_DELAY"] = "0"  # the fleet retries without sleeping
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep",
            "--spec", str(spec_path),
            "--store", str(store_path),
            "--coordinate",
            "--worker-id", "A",
            "--lease-ttl", "2",
            "--executor", "serial",
        ],
        env=env,
        cwd=tmp_path,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        wait_for_lease(coord / "leases")
        # A full audit line on disk proves A's claim committed — and that
        # the torn first write was healed — before the kill lands.
        wait_for_audit_bytes(coord / "audit.jsonl")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    # The torn first audit append left a healed fragment: at least one
    # non-JSON line that every reader skips.  Proof the environment spec
    # actually injected inside the subprocess.
    raw_lines = [
        line
        for line in (coord / "audit.jsonl").read_bytes().split(b"\n")
        if line.strip()
    ]
    malformed = []
    for line in raw_lines:
        try:
            json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            malformed.append(line)
    assert malformed, "REPRO_FAULTS never tore an audit write in worker A"

    # Worker B: drains the rest under its own in-process schedule.
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, sleep=lambda s: None)
    with use_policy(policy), inject(
        "store.append=torn:1;lease.claim=first:2:EAGAIN"
    ) as injector:
        report = run_matrix(
            matrix,
            store=ResultStore(store_path),
            executor="serial",
            coordinate=CoordinateOptions(worker_id="B", ttl=1.5, poll_interval=0.1),
        )
        snapshot = injector.snapshot()
    assert sum(point["fired"] for point in snapshot.values()) > 0

    final = ResultStore(store_path)
    assert final.missing(fingerprints) == []
    assert report.total == 3
    assert list((coord / "leases").glob("*.lease")) == []

    events = read_audit(coord)
    reclaimed = {e["fingerprint"] for e in events if e["event"] == "reclaim"}
    assert reclaimed, "B never reclaimed A's stale lease"

    # Zero duplicate executions *except* where the crash forced a rerun:
    # only reclaimed fingerprints may appear twice in the execute log.
    executes = [e["fingerprint"] for e in events if e["event"] == "execute"]
    duplicated = {fp for fp in executes if executes.count(fp) > 1}
    assert duplicated <= reclaimed

    # Faults + crash + reclaim still yield the sequential ground truth.
    sequential = run_matrix(matrix, workers=1).records
    accuracy = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")
    view = lambda records: [{k: r[k] for k in accuracy} for r in records]
    assert view(report.records) == view(sequential)
