"""Integration tests for the HoloDetect detector (AUG)."""

import numpy as np
import pytest

from repro.core import DetectorConfig, HoloDetect
from repro.dataset import Cell
from repro.evaluation import evaluate_predictions, make_split

FAST = DetectorConfig(epochs=20, embedding_dim=8, seed=0)


@pytest.fixture(scope="module")
def fitted(tiny_bundle_module):
    bundle, split = tiny_bundle_module
    detector = HoloDetect(FAST)
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    return bundle, split, detector


@pytest.fixture(scope="module")
def tiny_bundle_module():
    from repro.data import load_dataset

    bundle = load_dataset("hospital", num_rows=300, seed=1)
    split = make_split(bundle, 0.10, rng=0)
    return bundle, split


class TestFit:
    def test_learns_policy_and_augments(self, fitted):
        _, _, detector = fitted
        assert detector.policy is not None
        assert len(detector.policy) > 0
        assert detector.augmented_count > 0

    def test_x_transformation_learned(self, fitted):
        """Hospital errors are 'x' typos — the channel must discover
        transformations that write an 'x'."""
        _, _, detector = fitted
        assert any("x" in t.dst for t in detector.policy.transformations)

    def test_empty_training_rejected(self, tiny_bundle_module):
        from repro.dataset import TrainingSet

        bundle, _ = tiny_bundle_module
        detector = HoloDetect(FAST)
        with pytest.raises(ValueError):
            detector.fit(bundle.dirty, TrainingSet([]))


class TestPredict:
    def test_detects_errors_better_than_chance(self, fitted):
        bundle, split, detector = fitted
        predictions = detector.predict(split.test_cells)
        metrics = evaluate_predictions(
            predictions.error_cells, bundle.error_cells, split.test_cells
        )
        assert metrics.f1 > 0.5  # modest bar for the tiny fast config

    def test_probabilities_in_unit_interval(self, fitted):
        _, split, detector = fitted
        predictions = detector.predict(split.test_cells[:50])
        assert np.all((0 <= predictions.probabilities) & (predictions.probabilities <= 1))

    def test_default_prediction_excludes_training_cells(self, fitted):
        _, split, detector = fitted
        predictions = detector.predict()
        assert set(predictions.cells).isdisjoint(split.training.cells)

    def test_worker_prediction_matches_sequential(self, fitted):
        """The windowed thread-pool path must be positionally identical."""
        from dataclasses import replace

        _, split, detector = fitted
        cells = split.test_cells[:150]
        original = detector.config
        try:
            detector.config = replace(original, prediction_batch=32, prediction_workers=1)
            sequential = detector.predict(cells)
            detector.config = replace(original, prediction_batch=32, prediction_workers=3)
            threaded = detector.predict(cells)
        finally:
            detector.config = original
        assert threaded.cells == sequential.cells
        np.testing.assert_array_equal(threaded.probabilities, sequential.probabilities)

    def test_error_predictions_helpers(self, fitted):
        _, split, detector = fitted
        predictions = detector.predict(split.test_cells[:20])
        cell = predictions.cells[0]
        assert isinstance(predictions.is_error(cell), bool)
        assert cell in predictions.as_dict()
        with pytest.raises(KeyError):
            predictions.is_error(Cell(999999, "nope"))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            HoloDetect(FAST).predict()


class TestConfigVariants:
    def test_no_augmentation_supervised_mode(self, tiny_bundle_module):
        from dataclasses import replace

        bundle, split = tiny_bundle_module
        detector = HoloDetect(replace(FAST, augment=False))
        detector.fit(bundle.dirty, split.training, bundle.constraints)
        assert detector.augmented_count == 0
        assert detector.policy is None

    def test_target_ratio_controls_balance(self, tiny_bundle_module):
        from dataclasses import replace

        bundle, split = tiny_bundle_module
        detector = HoloDetect(replace(FAST, target_ratio=0.3))
        detector.fit(bundle.dirty, split.training, bundle.constraints)
        assert detector.augmented_count > 0

    def test_exclude_models_ablation(self, tiny_bundle_module):
        from dataclasses import replace

        bundle, split = tiny_bundle_module
        detector = HoloDetect(replace(FAST, exclude_models=("neighborhood",)))
        detector.fit(bundle.dirty, split.training, bundle.constraints)
        assert "neighborhood" not in detector.pipeline.model_names

    def test_without_constraints(self, tiny_bundle_module):
        bundle, split = tiny_bundle_module
        detector = HoloDetect(FAST)
        detector.fit(bundle.dirty, split.training, constraints=None)
        assert "constraint_violations" not in detector.pipeline.model_names
