"""Unit tests for the joint model, trainer, and Platt scaling."""

import numpy as np
import pytest

from repro.core import JointModel, PlattScaler, TrainerConfig, train_model
from repro.features.pipeline import CellFeatures


def synthetic_features(n: int, seed: int = 0) -> tuple[CellFeatures, np.ndarray]:
    """Separable synthetic problem: label depends on numeric[0] + branch sums."""
    rng = np.random.default_rng(seed)
    numeric = rng.normal(size=(n, 4))
    char = rng.normal(size=(n, 6))
    word = rng.normal(size=(n, 6))
    labels = ((numeric[:, 0] + char.sum(axis=1) * 0.3) > 0).astype(int)
    return CellFeatures(numeric=numeric, branches={"char": char, "word": word}), labels


class TestJointModel:
    def test_forward_shape(self):
        feats, _ = synthetic_features(8)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, rng=0)
        assert model(feats).shape == (8, 2)

    def test_missing_branch_raises(self):
        feats = CellFeatures(numeric=np.zeros((2, 4)), branches={"char": np.zeros((2, 6))})
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, rng=0)
        with pytest.raises(KeyError):
            model(feats)

    def test_numeric_width_mismatch_raises(self):
        feats = CellFeatures(numeric=np.zeros((2, 3)), branches={})
        model = JointModel(numeric_dim=4, branch_dims={}, rng=0)
        with pytest.raises(ValueError):
            model(feats)

    def test_no_features_rejected(self):
        with pytest.raises(ValueError):
            JointModel(numeric_dim=0, branch_dims={}, rng=0)

    def test_numeric_only_model(self):
        feats = CellFeatures(numeric=np.ones((3, 4)), branches={})
        model = JointModel(numeric_dim=4, branch_dims={}, rng=0)
        assert model(feats).shape == (3, 2)

    def test_error_scores_sign_convention(self):
        feats, _ = synthetic_features(5)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, rng=0)
        scores = model.error_scores(feats)
        model.eval()  # match error_scores' internal eval mode (no dropout)
        logits = model(feats).numpy()
        np.testing.assert_allclose(scores, logits[:, 1] - logits[:, 0])

    def test_error_scores_restores_training_mode(self):
        feats, _ = synthetic_features(5)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, rng=0)
        model.train()
        model.error_scores(feats)
        assert model.training


class TestTraining:
    def test_loss_decreases(self):
        feats, labels = synthetic_features(120)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, dropout=0.0, rng=0)
        history = train_model(model, feats, labels, TrainerConfig(epochs=25, seed=0))
        assert history[-1] < history[0]

    def test_learns_separable_problem(self):
        feats, labels = synthetic_features(200)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, dropout=0.0, rng=0)
        train_model(model, feats, labels, TrainerConfig(epochs=40, lr=3e-3, seed=0))
        scores = model.error_scores(feats)
        accuracy = ((scores > 0).astype(int) == labels).mean()
        assert accuracy > 0.9

    def test_model_left_in_eval_mode(self):
        feats, labels = synthetic_features(30)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, rng=0)
        train_model(model, feats, labels, TrainerConfig(epochs=2, seed=0))
        assert not model.training

    def test_label_length_mismatch(self):
        feats, labels = synthetic_features(10)
        model = JointModel(numeric_dim=4, branch_dims={"char": 6, "word": 6}, rng=0)
        with pytest.raises(ValueError):
            train_model(model, feats, labels[:5])

    def test_empty_batch_rejected(self):
        feats = CellFeatures(numeric=np.zeros((0, 4)), branches={})
        model = JointModel(numeric_dim=4, branch_dims={}, rng=0)
        with pytest.raises(ValueError):
            train_model(model, feats, np.zeros(0, dtype=int))


class TestPlattScaler:
    def test_maps_scores_to_probabilities(self):
        rng = np.random.default_rng(0)
        scores = np.concatenate([rng.normal(-2, 1, 50), rng.normal(2, 1, 50)])
        targets = np.concatenate([np.zeros(50), np.ones(50)])
        scaler = PlattScaler().fit(scores, targets)
        probs = scaler.probability(scores)
        assert probs[targets == 1].mean() > probs[targets == 0].mean()
        assert np.all((0 <= probs) & (probs <= 1))

    def test_monotone_in_score_for_positive_a(self):
        scaler = PlattScaler().fit(np.array([-1.0, 1.0]), np.array([0.0, 1.0]))
        probs = scaler.probability(np.linspace(-3, 3, 10))
        assert np.all(np.diff(probs) >= 0)

    def test_empty_holdout_keeps_identity(self):
        scaler = PlattScaler().fit(np.zeros(0), np.zeros(0))
        assert scaler.probability(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PlattScaler().fit(np.zeros(3), np.zeros(4))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PlattScaler().probability(np.zeros(2))

    def test_calibration_improves_tiny_holdout_behaviour(self):
        """Prior-corrected targets keep probabilities off the extremes."""
        scaler = PlattScaler().fit(np.array([5.0]), np.array([1.0]))
        p = scaler.probability(np.array([5.0]))[0]
        assert p < 1.0
