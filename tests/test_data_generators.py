"""Unit tests for the benchmark dataset generators."""

import pytest

from repro.constraints import ViolationEngine
from repro.data import DATASET_NAMES, load_dataset
from repro.data.registry import DEFAULT_ROWS


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASET_NAMES) == {"hospital", "food", "soccer", "adult", "animal"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("nope")

    def test_custom_rows(self):
        bundle = load_dataset("soccer", num_rows=120, seed=0)
        assert bundle.dirty.num_rows == 120


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestEveryBundle:
    def test_shapes_match(self, name):
        bundle = load_dataset(name, num_rows=150, seed=0)
        assert bundle.clean.num_rows == bundle.dirty.num_rows == 150
        assert bundle.clean.attributes == bundle.dirty.attributes

    def test_has_errors_and_truth(self, name):
        bundle = load_dataset(name, num_rows=300, seed=0)
        assert len(bundle.truth) == bundle.dirty.num_cells
        assert 0 < len(bundle.error_cells) < bundle.dirty.num_cells

    def test_clean_satisfies_constraints(self, name):
        bundle = load_dataset(name, num_rows=150, seed=0)
        engine = ViolationEngine(bundle.constraints)
        assert engine.tuple_violation_counts(bundle.clean).sum() == 0

    def test_deterministic(self, name):
        a = load_dataset(name, num_rows=100, seed=5)
        b = load_dataset(name, num_rows=100, seed=5)
        assert a.dirty == b.dirty
        assert a.clean == b.clean

    def test_summary_fields(self, name):
        summary = load_dataset(name, num_rows=100, seed=0).summary()
        assert summary["dataset"] == name
        assert summary["rows"] == 100


class TestErrorProfiles:
    def test_hospital_typos_are_x_style(self):
        bundle = load_dataset("hospital", num_rows=400, seed=0)
        errors = bundle.error_cells
        with_x = sum(1 for c in errors if "x" in bundle.dirty.value(c))
        assert with_x / len(errors) > 0.9

    def test_adult_extreme_imbalance(self):
        bundle = load_dataset("adult", num_rows=1000, seed=0)
        assert bundle.error_rate < 0.01

    def test_food_mostly_swaps(self):
        bundle = load_dataset("food", num_rows=1500, seed=0)
        swaps = 0
        for cell in bundle.error_cells:
            if bundle.dirty.value(cell) in set(bundle.clean.domain(cell.attr)):
                swaps += 1
        assert swaps / len(bundle.error_cells) > 0.5  # 76% swaps nominal

    def test_soccer_mostly_typos(self):
        bundle = load_dataset("soccer", num_rows=1500, seed=0)
        swaps = 0
        for cell in bundle.error_cells:
            if bundle.dirty.value(cell) in set(bundle.clean.domain(cell.attr)):
                swaps += 1
        assert swaps / len(bundle.error_cells) < 0.5  # 76% typos nominal

    def test_paper_scale_rates(self):
        """Cell error rates stay close to Table 1's published statistics."""
        expected = {"hospital": 0.0265, "soccer": 0.0156, "adult": 0.001}
        for name, rate in expected.items():
            bundle = load_dataset(name, num_rows=1000, seed=3)
            assert bundle.error_rate == pytest.approx(rate, rel=0.35)
