"""Tests for the vocabulary-synthesis helpers behind the dataset generators."""

import numpy as np
import pytest

from repro.data.synth import (
    choose,
    code_pool,
    date_string,
    digit_pool,
    digit_string,
    phone_number,
    pronounceable_word,
    street_address,
    word_pool,
    zipf_choice,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestWordSynthesis:
    def test_pronounceable_word_nonempty(self, rng):
        word = pronounceable_word(rng)
        assert word and word[0].isupper()

    def test_word_pool_distinct(self, rng):
        pool = word_pool(rng, 50)
        assert len(pool) == 50
        assert len(set(pool)) == 50

    def test_word_pool_handles_tight_space(self, rng):
        # One-syllable words collide quickly; the pool must still fill.
        pool = word_pool(rng, 300, syllables=1)
        assert len(set(pool)) == 300

    def test_deterministic_given_seed(self):
        a = word_pool(np.random.default_rng(7), 10)
        b = word_pool(np.random.default_rng(7), 10)
        assert a == b


class TestNumericSynthesis:
    def test_digit_string_length_and_alphabet(self, rng):
        s = digit_string(rng, 5)
        assert len(s) == 5 and s.isdigit()

    def test_digit_pool_distinct(self, rng):
        pool = digit_pool(rng, 40, 5)
        assert len(set(pool)) == 40
        assert all(len(d) == 5 for d in pool)

    def test_code_pool_sortable(self, rng):
        pool = code_pool(rng, 12, "HP", 4)
        assert pool == sorted(pool)
        assert pool[0] == "HP-0000"

    def test_phone_number_format(self, rng):
        parts = phone_number(rng).split("-")
        assert [len(p) for p in parts] == [3, 3, 4]


class TestStructuredSynthesis:
    def test_street_address_shape(self, rng):
        address = street_address(rng, ["Main", "Oak"])
        number, street, suffix = address.split(" ")
        assert number.isdigit()
        assert street in ("Main", "Oak")
        assert suffix in ("St", "Ave", "Blvd", "Rd")

    def test_date_string_format_and_range(self, rng):
        for _ in range(20):
            date = date_string(rng, 2000, 2005)
            year, month, day = date.split("-")
            assert 2000 <= int(year) <= 2005
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28


class TestChoiceHelpers:
    def test_choose_from_pool(self, rng):
        pool = ["a", "b", "c"]
        assert all(choose(rng, pool) in pool for _ in range(10))

    def test_zipf_skews_to_early_entries(self, rng):
        pool = [f"v{i}" for i in range(20)]
        draws = [zipf_choice(rng, pool) for _ in range(500)]
        first_freq = draws.count("v0") / 500
        last_freq = draws.count("v19") / 500
        assert first_freq > last_freq
