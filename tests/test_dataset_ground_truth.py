"""Unit tests for GroundTruth."""

import pytest

from repro.dataset import Cell, GroundTruth


class TestGroundTruth:
    def test_from_clean_dataset_covers_all_cells(self, zip_clean):
        truth = GroundTruth.from_clean_dataset(zip_clean)
        assert len(truth) == zip_clean.num_cells

    def test_error_detection(self, zip_dataset, zip_truth, typo_cell):
        assert zip_truth.is_error(typo_cell, zip_dataset)
        assert not zip_truth.is_error(Cell(0, "city"), zip_dataset)

    def test_error_cells(self, zip_dataset, zip_truth, typo_cell):
        assert zip_truth.error_cells(zip_dataset) == [typo_cell]

    def test_label_convention(self, zip_dataset, zip_truth, typo_cell):
        assert zip_truth.label(typo_cell, zip_dataset) == -1
        assert zip_truth.label(Cell(0, "zip"), zip_dataset) == 1

    def test_true_value(self, zip_truth, typo_cell):
        assert zip_truth.true_value(typo_cell) == "Chicago"

    def test_restrict(self, zip_dataset, zip_truth, typo_cell):
        sub = zip_truth.restrict([typo_cell, Cell(0, "zip")])
        assert len(sub) == 2
        assert typo_cell in sub
        assert Cell(5, "city") not in sub

    def test_error_rate(self, zip_dataset, zip_truth):
        assert zip_truth.error_rate(zip_dataset) == pytest.approx(1 / 18)

    def test_error_rate_empty_truth(self, zip_dataset):
        assert GroundTruth({}).error_rate(zip_dataset) == 0.0

    def test_contains(self, zip_truth, typo_cell):
        assert typo_cell in zip_truth
        assert Cell(99, "city") not in zip_truth
