"""Unit tests for CSV I/O."""

import pytest

from repro.dataset import Dataset, read_csv, write_csv


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path, zip_dataset):
        path = tmp_path / "data.csv"
        write_csv(zip_dataset, path)
        loaded = read_csv(path)
        assert loaded == zip_dataset

    def test_empty_fields_become_missing_token(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,\n,2\n")
        loaded = read_csv(path, missing_token="<NaN>")
        assert loaded.column("b") == ["<NaN>", "2"]
        assert loaded.column("a") == ["1", "<NaN>"]

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            read_csv(path)

    def test_values_with_commas_and_quotes(self, tmp_path):
        d = Dataset.from_rows(["a"], [['he said "hi, there"']])
        path = tmp_path / "q.csv"
        write_csv(d, path)
        assert read_csv(path) == d

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        loaded = read_csv(path)
        assert loaded.num_rows == 0
        assert loaded.attributes == ("a", "b")
