"""Out-of-core sharded relations (:mod:`repro.dataset.sharded`).

The backing's whole contract is *indistinguishability*: a sharded relation
must produce bit-identical fingerprints, featurizer fits, and predictions
to the in-memory :class:`~repro.dataset.table.Dataset` holding the same
rows — for every shard size.  Property tests drive that invariance with
hypothesis-generated tables; fixed tests cover the ingestion path, the
immutability guard, the registry kind, and the store round-trip of
mergeable partials.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifacts.store import ArtifactStore
from repro.data.registry import load_dataset
from repro.dataset import Cell, Dataset, ShardedDataset, open_relation
from repro.dataset.loader import read_csv, write_csv
from repro.dataset.relation import ShardSpan, compose_fingerprint, hash_column
from repro.features.dataset_level import ConstraintViolationFeaturizer
from repro.features.partials import (
    cooccurrence_partial,
    decode_cooccurrence_partial,
    decode_fd_group_partial,
    encode_cooccurrence_partial,
    encode_fd_group_partial,
    fd_group_partial,
    merge_cooccurrence_partials,
    merge_fd_group_partials,
)
from repro.features.tuple_level import CooccurrenceFeaturizer

# Small random tables: 2-3 attributes, clumpy values so co-occurrence and
# FD groups are non-trivial.
_values = st.sampled_from(["a", "b", "ab", "x1", ""])
_tables = st.lists(
    st.tuples(_values, _values, _values), min_size=1, max_size=24
).map(lambda rows: Dataset.from_rows(["p", "q", "r"], [list(r) for r in rows]))
_shard_rows = st.integers(min_value=1, max_value=9)


def _sharded_twin(dataset, tmp_path, shard_rows, name="twin"):
    return ShardedDataset.convert(dataset, tmp_path / name, shard_rows=shard_rows)


class TestFingerprintInvariance:
    @given(dataset=_tables, shard_rows=_shard_rows)
    @settings(max_examples=30, deadline=None)
    def test_fingerprints_match_in_memory(self, dataset, shard_rows, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("shards")
        sharded = _sharded_twin(dataset, tmp, shard_rows)
        for attr in dataset.attributes:
            assert sharded.column_fingerprint(attr) == dataset.column_fingerprint(attr)
        assert sharded.fingerprint() == dataset.fingerprint()
        rows = range(dataset.num_rows)
        assert sharded.rows_fingerprint(rows) == dataset.rows_fingerprint(rows)
        assert sharded == dataset
        assert dataset == sharded

    @given(dataset=_tables, a=_shard_rows, b=_shard_rows)
    @settings(max_examples=20, deadline=None)
    def test_shard_size_never_changes_fingerprint(
        self, dataset, a, b, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("shards")
        fp_a = _sharded_twin(dataset, tmp, a, "a").fingerprint()
        fp_b = _sharded_twin(dataset, tmp, b, "b").fingerprint()
        assert fp_a == fp_b

    @given(dataset=_tables, shard_rows=_shard_rows)
    @settings(max_examples=20, deadline=None)
    def test_shard_digests_compose(self, dataset, shard_rows, tmp_path_factory):
        """Per-shard digests are exactly what the in-memory backing derives
        from the same spans, and a single-shard relation's shard
        fingerprint degenerates to the relation fingerprint."""
        tmp = tmp_path_factory.mktemp("shards")
        sharded = _sharded_twin(dataset, tmp, shard_rows)
        for span in sharded.shard_spans():
            for attr in dataset.attributes:
                expected = hash_column(dataset.column(attr)[span.start : span.stop])
                assert sharded.shard_column_digest(span.index, attr) == expected
            assert sharded.shard_fingerprint(span.index) == compose_fingerprint(
                sharded.attributes,
                {
                    a: sharded.shard_column_digest(span.index, a)
                    for a in sharded.attributes
                },
            )
        if sharded.num_shards == 1:
            assert sharded.shard_fingerprint(0) == dataset.fingerprint()

    def test_in_memory_is_one_span(self, tmp_path):
        dataset = Dataset.from_rows(["x"], [["1"], ["2"]])
        assert dataset.shard_spans() == (ShardSpan(0, 0, 2),)
        assert dataset.shard_fingerprint(0) == dataset.fingerprint()


class TestPartialComposition:
    @given(dataset=_tables, shard_rows=_shard_rows)
    @settings(max_examples=25, deadline=None)
    def test_cooccurrence_partials_merge_to_whole(self, dataset, shard_rows):
        whole = cooccurrence_partial(dataset, ShardSpan(0, 0, dataset.num_rows))
        spans = [
            ShardSpan(i, start, min(start + shard_rows, dataset.num_rows))
            for i, start in enumerate(range(0, dataset.num_rows, shard_rows))
        ]
        merged = merge_cooccurrence_partials(
            [cooccurrence_partial(dataset, s) for s in spans]
        )
        assert merged == whole

    @given(dataset=_tables, shard_rows=_shard_rows, split=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_cooccurrence_merge_associative(self, dataset, shard_rows, split):
        spans = [
            ShardSpan(i, start, min(start + shard_rows, dataset.num_rows))
            for i, start in enumerate(range(0, dataset.num_rows, shard_rows))
        ]
        partials = [cooccurrence_partial(dataset, s) for s in spans]
        flat = merge_cooccurrence_partials(partials)
        grouped = merge_cooccurrence_partials(
            [
                merge_cooccurrence_partials(partials[:split]),
                merge_cooccurrence_partials(partials[split:]),
            ]
        )
        assert flat == grouped

    @given(dataset=_tables, shard_rows=_shard_rows)
    @settings(max_examples=25, deadline=None)
    def test_fd_partials_merge_to_whole(self, dataset, shard_rows):
        whole = fd_group_partial(
            dataset, ShardSpan(0, 0, dataset.num_rows), ["p"], "q"
        )
        spans = [
            ShardSpan(i, start, min(start + shard_rows, dataset.num_rows))
            for i, start in enumerate(range(0, dataset.num_rows, shard_rows))
        ]
        merged = merge_fd_group_partials(
            [fd_group_partial(dataset, s, ["p"], "q") for s in spans]
        )
        assert merged == whole

    @given(dataset=_tables)
    @settings(max_examples=20, deadline=None)
    def test_partials_round_trip_through_json(self, dataset):
        span = ShardSpan(0, 0, dataset.num_rows)
        co = cooccurrence_partial(dataset, span)
        assert decode_cooccurrence_partial(encode_cooccurrence_partial(co)) == co
        fd = fd_group_partial(dataset, span, ["p", "r"], "q")
        assert decode_fd_group_partial(encode_fd_group_partial(fd)) == fd


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital", num_rows=60, seed=3)


class TestFeaturizerEquivalence:
    def test_cooccurrence_fit_matches_in_memory(self, hospital, tmp_path):
        sharded = _sharded_twin(hospital.dirty, tmp_path, 17)
        mem = CooccurrenceFeaturizer().fit(hospital.dirty)
        store = ArtifactStore(tmp_path / "store")
        cold = CooccurrenceFeaturizer()
        cold.artifact_store = store
        cold.fit(sharded)
        assert cold._joint == mem._joint
        assert cold._value_counts == mem._value_counts
        # Per-shard partial keys were recorded and the partials stored.
        shard_keys = [k for k in cold.artifact_keys if "/shard/" in k]
        assert len(shard_keys) == sharded.num_shards
        # A second fit is served entirely from stored partials.
        warm = CooccurrenceFeaturizer()
        warm.artifact_store = store
        warm.fit(sharded)
        assert warm._joint == mem._joint

    def test_constraint_violations_fit_matches_in_memory(self, hospital, tmp_path):
        sharded = _sharded_twin(hospital.dirty, tmp_path, 17)
        mem = ConstraintViolationFeaturizer(hospital.constraints).fit(hospital.dirty)
        cold = ConstraintViolationFeaturizer(hospital.constraints)
        cold.artifact_store = ArtifactStore(tmp_path / "store")
        cold.fit(sharded)
        assert np.array_equal(mem._tuple_counts, cold._tuple_counts)
        for a, b in zip(mem._fd_indexes, cold._fd_indexes):
            assert (a is None) == (b is None)
            if a is not None:
                assert a["groups"] == b["groups"]

    def test_constraint_violations_without_store(self, hospital, tmp_path):
        sharded = _sharded_twin(hospital.dirty, tmp_path, 23)
        mem = ConstraintViolationFeaturizer(hospital.constraints).fit(hospital.dirty)
        cold = ConstraintViolationFeaturizer(hospital.constraints).fit(sharded)
        assert np.array_equal(mem._tuple_counts, cold._tuple_counts)


class TestDetectorEquivalence:
    @pytest.fixture(scope="class")
    def fitted(self, tmp_path_factory):
        from repro.core.detector import DetectorConfig, HoloDetect
        from repro.evaluation.splits import make_split

        bundle = load_dataset("hospital", num_rows=40, seed=5)
        tmp = tmp_path_factory.mktemp("detector")
        sharded = ShardedDataset.convert(bundle.dirty, tmp / "shards", shard_rows=13)
        split = make_split(bundle, 0.2, rng=7)

        def build():
            return HoloDetect(
                DetectorConfig(
                    epochs=2,
                    embedding_dim=4,
                    embedding_epochs=1,
                    min_training_steps=20,
                    prediction_batch=16,
                    artifact_dir=str(tmp / "store"),
                    seed=0,
                )
            )

        mem = build()
        mem.fit(bundle.dirty, split.training, bundle.constraints)
        ooc = build()
        ooc.fit(sharded, split.training, bundle.constraints)
        return mem, ooc

    def test_sharded_predictions_bit_identical(self, fitted):
        mem, ooc = fitted
        p_mem = mem.predict()
        p_ooc = ooc.predict(p_mem.cells)
        assert list(p_mem.cells) == list(p_ooc.cells)
        assert np.array_equal(p_mem.probabilities, p_ooc.probabilities)

    def test_streamed_prediction_bit_identical(self, fitted):
        mem, ooc = fitted
        p_mem = mem.predict()
        streamed = list(ooc.iter_predict(iter(p_mem.cells)))
        assert [c for c, _ in streamed] == list(p_mem.cells)
        assert np.array_equal(
            np.array([p for _, p in streamed]), p_mem.probabilities
        )

    def test_warm_fit_reuses_artifacts(self, fitted):
        mem, ooc = fitted
        # The two fits shared one store and identical fingerprints, so the
        # sharded fit reused the in-memory fit's whole-state artifacts.
        mem_keys = {k: v for k, v in mem.artifact_keys.items() if "/shard/" not in k}
        ooc_keys = {k: v for k, v in ooc.artifact_keys.items() if "/shard/" not in k}
        assert mem_keys == ooc_keys


class TestIngestion:
    def test_from_csv_matches_read_csv(self, tmp_path):
        dataset = Dataset.from_rows(
            ["a", "b"], [["1", "x,y"], ['"q"', ""], ["3", "z"]]
        )
        csv_path = tmp_path / "data.csv"
        write_csv(dataset, csv_path)
        sharded = ShardedDataset.from_csv(csv_path, tmp_path / "shards", shard_rows=2)
        assert sharded.fingerprint() == read_csv(csv_path).fingerprint()

    def test_convert_refuses_existing_without_force(self, tmp_path):
        dataset = Dataset.from_rows(["a"], [["1"]])
        ShardedDataset.convert(dataset, tmp_path / "s")
        with pytest.raises(FileExistsError):
            ShardedDataset.convert(dataset, tmp_path / "s")
        ShardedDataset.convert(dataset, tmp_path / "s", force=True)

    def test_to_dataset_round_trip(self, tmp_path):
        dataset = Dataset.from_rows(["a", "b"], [["1", "2"], ["3", "4"], ["5", "6"]])
        sharded = _sharded_twin(dataset, tmp_path, 2)
        assert sharded.to_dataset() == dataset

    def test_verify_detects_corruption(self, tmp_path):
        dataset = Dataset.from_rows(["a"], [["1"], ["2"], ["3"]])
        sharded = _sharded_twin(dataset, tmp_path, 2)
        sharded.verify()
        shard_file = next((tmp_path / "twin" / "shards").rglob("*.npy"))
        arr = np.load(shard_file)
        arr[0] = "tampered"
        np.save(shard_file, arr)
        with pytest.raises(ValueError, match="digest"):
            ShardedDataset(tmp_path / "twin").verify()

    def test_open_relation_dispatches_on_path(self, tmp_path):
        dataset = Dataset.from_rows(["a"], [["1"], ["2"]])
        csv_path = tmp_path / "data.csv"
        write_csv(dataset, csv_path)
        assert isinstance(open_relation(csv_path), Dataset)
        _sharded_twin(dataset, tmp_path, 1)
        opened = open_relation(tmp_path / "twin")
        assert isinstance(opened, ShardedDataset)
        assert opened.fingerprint() == dataset.fingerprint()


class TestRelationSemantics:
    def test_mutators_raise(self, tmp_path):
        dataset = Dataset.from_rows(["a"], [["1"], ["2"]])
        sharded = _sharded_twin(dataset, tmp_path, 1)
        with pytest.raises(TypeError, match="to_dataset"):
            sharded.set_value(Cell(0, "a"), "9")
        with pytest.raises(TypeError, match="to_dataset"):
            sharded.apply_edits({Cell(0, "a"): "9"})
        with pytest.raises(TypeError, match="to_dataset"):
            sharded.append_rows([["9"]])

    def test_copy_returns_self(self, tmp_path):
        dataset = Dataset.from_rows(["a"], [["1"]])
        sharded = _sharded_twin(dataset, tmp_path, 1)
        assert sharded.copy() is sharded

    @given(dataset=_tables, shard_rows=_shard_rows)
    @settings(max_examples=20, deadline=None)
    def test_column_view_indexing(self, dataset, shard_rows, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("shards")
        sharded = _sharded_twin(dataset, tmp, shard_rows)
        for attr in dataset.attributes:
            expected = dataset.column(attr)
            view = sharded.column(attr)
            assert list(view) == list(expected)
            assert [view[i] for i in range(len(view))] == list(expected)
            assert view[-1] == expected[-1]
            assert list(view[1:3]) == list(expected[1:3])

    def test_statistics_match_in_memory(self, hospital, tmp_path):
        sharded = _sharded_twin(hospital.dirty, tmp_path, 11)
        for attr in hospital.dirty.attributes[:4]:
            assert sharded.value_counts(attr) == hospital.dirty.value_counts(attr)
            assert sharded.domain(attr) == hospital.dirty.domain(attr)

    def test_column_chunk_spans_shards(self, hospital, tmp_path):
        sharded = _sharded_twin(hospital.dirty, tmp_path, 7)
        attr = hospital.dirty.attributes[0]
        full = hospital.dirty.column(attr)
        assert list(sharded.column_chunk(attr, 3, 25)) == list(full[3:25])
        assert list(sharded.column_chunk(attr, 0, sharded.num_rows)) == list(full)


class TestRegistryKind:
    def test_sharded_dataset_kind(self, hospital, tmp_path):
        from repro.registry import REGISTRY

        _sharded_twin(hospital.dirty, tmp_path, 16)
        bundle = REGISTRY.create("dataset", "sharded", {"dir": str(tmp_path / "twin")})
        assert isinstance(bundle.dirty, ShardedDataset)
        assert bundle.dirty.fingerprint() == hospital.dirty.fingerprint()
        assert bundle.name == "twin"
        assert len(bundle.truth) == 0

    def test_rejects_resizing(self, tmp_path):
        from repro.registry import ComponentError, REGISTRY

        with pytest.raises(ComponentError):
            REGISTRY.create(
                "dataset", "sharded", {"dir": str(tmp_path), "num_rows": 5}
            )
