"""Unit tests for the relational substrate (Dataset, Schema, Cell)."""

import pytest

from repro.dataset import Cell, Dataset, Schema


class TestSchema:
    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(("a", "a"))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Schema(())

    def test_contains_and_index(self):
        schema = Schema(("a", "b", "c"))
        assert "b" in schema
        assert "z" not in schema
        assert schema.index("c") == 2
        assert len(schema) == 3


class TestDatasetConstruction:
    def test_from_rows_roundtrip(self):
        d = Dataset.from_rows(["x", "y"], [["1", "2"], ["3", "4"]])
        assert d.num_rows == 2
        assert d.row_values(0) == ["1", "2"]
        assert d.row_values(1) == ["3", "4"]

    def test_from_rows_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="arity"):
            Dataset.from_rows(["x", "y"], [["1"]])

    def test_from_dicts(self):
        d = Dataset.from_dicts([{"a": "1", "b": "2"}, {"a": "3", "b": "4"}])
        assert d.attributes == ("a", "b")
        assert d.value(Cell(1, "b")) == "4"

    def test_from_dicts_empty_needs_schema(self):
        with pytest.raises(ValueError):
            Dataset.from_dicts([])

    def test_values_coerced_to_str(self):
        d = Dataset.from_rows(["x"], [[1], [2.5]])
        assert d.column("x") == ["1", "2.5"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Dataset(Schema(("a", "b")), {"a": ["1"], "b": ["1", "2"]})

    def test_columns_must_match_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Dataset(Schema(("a",)), {"b": ["1"]})


class TestDatasetAccess:
    def test_value_and_set_value(self, zip_dataset):
        cell = Cell(0, "city")
        assert zip_dataset.value(cell) == "Chicago"
        zip_dataset.set_value(cell, "Boston")
        assert zip_dataset.value(cell) == "Boston"

    def test_getitem(self, zip_dataset):
        assert zip_dataset[Cell(4, "state")] == "MA"

    def test_row_dict(self, zip_dataset):
        assert zip_dataset.row_dict(2) == {"zip": "60614", "city": "Chicago", "state": "IL"}

    def test_row_dict_out_of_range(self, zip_dataset):
        with pytest.raises(IndexError):
            zip_dataset.row_dict(99)

    def test_cells_enumeration(self, zip_dataset):
        cells = list(zip_dataset.cells())
        assert len(cells) == zip_dataset.num_cells == 18
        assert len(set(cells)) == 18

    def test_cells_of_row(self, zip_dataset):
        cells = zip_dataset.cells_of_row(3)
        assert {c.attr for c in cells} == {"zip", "city", "state"}
        assert all(c.row == 3 for c in cells)

    def test_len(self, zip_dataset):
        assert len(zip_dataset) == 6


class TestDatasetStatistics:
    def test_value_counts(self, zip_dataset):
        counts = zip_dataset.value_counts("zip")
        assert counts == {"60612": 2, "60614": 2, "02139": 2}

    def test_domain_preserves_first_seen_order(self, zip_dataset):
        assert zip_dataset.domain("city") == ["Chicago", "Cicago", "Cambridge"]

    def test_copy_is_independent(self, zip_dataset):
        copy = zip_dataset.copy()
        copy.set_value(Cell(0, "city"), "X")
        assert zip_dataset.value(Cell(0, "city")) == "Chicago"
        assert copy != zip_dataset

    def test_equality(self, zip_dataset):
        assert zip_dataset == zip_dataset.copy()

    def test_copy_carries_version(self, zip_dataset):
        # Regression: copy() used to reset _version to 0, so a fingerprint
        # memoised on the copy could be served for post-copy mutations.
        zip_dataset.set_value(Cell(0, "city"), "Springfield")
        zip_dataset.set_value(Cell(1, "city"), "Shelbyville")
        assert zip_dataset.version > 0
        copy = zip_dataset.copy()
        assert copy.version == zip_dataset.version
        copy.set_value(Cell(0, "city"), "Ogdenville")
        assert copy.version > zip_dataset.version

    def test_repr(self, zip_dataset):
        assert "6 rows" in repr(zip_dataset)


class TestApplyEditsNetNoop:
    def test_duplicate_edits_netting_to_noop_excluded_from_delta(self, zip_dataset):
        # Regression: `changed` was computed edit-by-edit, so a batch that
        # rewrote a cell and then restored its pre-batch value still
        # reported the cell (and its row/column) in the delta.
        cell = Cell(0, "city")
        original = zip_dataset.value(cell)
        delta = zip_dataset.apply_edits([(cell, "X"), (cell, original)])
        assert delta.is_empty
        assert zip_dataset.value(cell) == original

    def test_net_noop_does_not_bump_version(self, zip_dataset):
        cell = Cell(0, "city")
        version = zip_dataset.version
        zip_dataset.apply_edits([(cell, "X"), (cell, zip_dataset.value(cell))])
        assert zip_dataset.version == version

    def test_mixed_batch_reports_only_net_changes(self, zip_dataset):
        noop = Cell(0, "city")
        real = Cell(1, "city")
        delta = zip_dataset.apply_edits(
            [(noop, "X"), (noop, zip_dataset.value(noop)), (real, "Chicago")]
        )
        assert set(delta.cells) == {real}
        assert delta.columns == ("city",)
        assert delta.rows == (1,)
        assert zip_dataset.value(real) == "Chicago"

    def test_last_write_wins_still_reported(self, zip_dataset):
        cell = Cell(0, "city")
        delta = zip_dataset.apply_edits([(cell, "X"), (cell, "Y")])
        assert set(delta.cells) == {cell}
        assert zip_dataset.value(cell) == "Y"
