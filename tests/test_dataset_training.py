"""Unit tests for TrainingSet and LabeledCell."""

import pytest

from repro.dataset import Cell, LabeledCell, TrainingSet


def example(row, attr, observed, true):
    return LabeledCell(Cell(row, attr), observed, true)


class TestLabeledCell:
    def test_error_label(self):
        assert example(0, "a", "x", "y").is_error
        assert example(0, "a", "x", "y").label == -1

    def test_correct_label(self):
        assert not example(0, "a", "x", "x").is_error
        assert example(0, "a", "x", "x").label == 1


class TestTrainingSet:
    def test_rejects_duplicate_cells(self):
        with pytest.raises(ValueError, match="duplicate"):
            TrainingSet([example(0, "a", "x", "x"), example(0, "a", "y", "y")])

    def test_partitions(self, zip_training):
        assert len(zip_training.errors) == 1
        assert len(zip_training.correct) == len(zip_training) - 1

    def test_error_pairs(self, zip_training):
        assert zip_training.error_pairs() == [("Chicago", "Cicago")]

    def test_from_cells(self, zip_dataset, zip_truth, typo_cell):
        ts = TrainingSet.from_cells([typo_cell], zip_dataset, zip_truth)
        assert len(ts) == 1
        assert ts[0].observed == "Cicago"
        assert ts[0].true == "Chicago"

    def test_extend_allows_repeated_cells(self, zip_training):
        extra = [example(0, "city", "Chicgo", "Chicago")]
        bigger = zip_training.extend(extra)
        assert len(bigger) == len(zip_training) + 1
        # original untouched
        assert len(zip_training.errors) == 1

    def test_split_holdout_disjoint_and_complete(self, zip_training):
        train, hold = zip_training.split_holdout(0.25, rng=0)
        assert len(train) + len(hold) == len(zip_training)
        assert set(train.cells).isdisjoint(hold.cells)

    def test_split_holdout_stratifies_minority(self):
        examples = [example(i, "a", "v", "v") for i in range(20)]
        examples += [example(i, "b", "x", "y") for i in range(2)]
        ts = TrainingSet(examples)
        train, hold = ts.split_holdout(0.2, rng=1)
        # At least one error on each side when the class has >= 2 members.
        assert any(e.is_error for e in train)
        assert any(e.is_error for e in hold)

    def test_split_holdout_zero_fraction(self, zip_training):
        train, hold = zip_training.split_holdout(0.0, rng=0)
        assert len(hold) == 0
        assert len(train) == len(zip_training)

    def test_split_holdout_invalid_fraction(self, zip_training):
        with pytest.raises(ValueError):
            zip_training.split_holdout(1.0)

    def test_iteration_and_indexing(self, zip_training):
        assert list(zip_training)[0] == zip_training[0]
