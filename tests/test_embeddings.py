"""Unit tests for the FastText-style embedding substrate."""

import numpy as np
import pytest

from repro.dataset import Dataset
from repro.embeddings import (
    FastTextEmbedding,
    char_corpus,
    tuple_corpus,
    tuple_value_corpus,
    word_corpus,
)
from repro.embeddings.corpus import EMPTY_TOKEN
from repro.embeddings.fasttext import subword_ngrams


class TestSubwordNgrams:
    def test_boundary_markers(self):
        grams = subword_ngrams("ab", 3, 5)
        assert "<ab" in grams and "ab>" in grams and "<ab>" in grams

    def test_single_char(self):
        assert subword_ngrams("a", 3, 5) == ["<a>"]

    def test_empty_word(self):
        assert subword_ngrams("", 3, 5) == ["<>"][:1] or subword_ngrams("", 3, 5) == []

    def test_range_respected(self):
        grams = subword_ngrams("abcdef", 3, 4)
        assert all(3 <= len(g) <= 4 for g in grams)


class TestCorpusBuilders:
    def test_char_corpus(self, zip_dataset):
        sentences = char_corpus(zip_dataset, "zip")
        assert sentences[0] == ["6", "0", "6", "1", "2"]

    def test_word_corpus(self, zip_dataset):
        sentences = word_corpus(zip_dataset, "city")
        assert sentences[0] == ["chicago"]

    def test_tuple_corpus_pools_attributes(self, zip_dataset):
        sentences = tuple_corpus(zip_dataset)
        assert len(sentences) == zip_dataset.num_rows
        assert "chicago" in sentences[0] and "il" in sentences[0]

    def test_tuple_value_corpus_keeps_raw_values(self, zip_dataset):
        sentences = tuple_value_corpus(zip_dataset)
        assert "60612" in sentences[0]
        assert "Chicago" in sentences[0]

    def test_empty_cells_get_token(self):
        d = Dataset.from_rows(["a"], [[""]])
        assert word_corpus(d, "a") == [[EMPTY_TOKEN]]


class TestFastTextEmbedding:
    @pytest.fixture(scope="class")
    def fitted(self):
        sentences = [
            ["chicago", "illinois"],
            ["chicago", "illinois"],
            ["chicago", "illinois"],
            ["boston", "massachusetts"],
            ["boston", "massachusetts"],
        ] * 10
        return FastTextEmbedding(dim=12, epochs=4, rng=0).fit(sentences)

    def test_vector_shape(self, fitted):
        assert fitted.vector("chicago").shape == (12,)

    def test_oov_has_vector(self, fitted):
        assert np.linalg.norm(fitted.vector("neverseen")) > 0

    def test_typo_closer_than_unrelated(self, fitted):
        """Subwords put 'chicagx' nearer 'chicago' than 'massachusetts'."""

        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        typo = fitted.vector("chicagx")
        assert cos(typo, fitted.vector("chicago")) > cos(
            typo, fitted.vector("massachusetts")
        )

    def test_cooccurring_words_similar(self, fitted):
        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        # 'chicago' should be closer to its constant companion 'illinois'
        # than to 'massachusetts'.
        chicago = fitted.vector("chicago")
        assert cos(chicago, fitted.vector("illinois")) > cos(
            chicago, fitted.vector("massachusetts")
        )

    def test_sentence_vector_mean(self, fitted):
        v = fitted.sentence_vector(["chicago", "boston"])
        expected = (fitted.vector("chicago") + fitted.vector("boston")) / 2
        np.testing.assert_allclose(v, expected)

    def test_sentence_vector_empty(self, fitted):
        np.testing.assert_allclose(fitted.sentence_vector([]), np.zeros(12))

    def test_nearest_neighbor_distance_bounds(self, fitted):
        d = fitted.nearest_neighbor_distance("chicago")
        assert 0.0 <= d <= 2.0

    def test_nearest_neighbor_excludes_self(self, fitted):
        # Distance to nearest *other* word must be > 0 for a trained model.
        assert fitted.nearest_neighbor_distance("chicago") > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FastTextEmbedding().vector("x")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            FastTextEmbedding().fit([])

    def test_deterministic_given_seed(self):
        sentences = [["a", "b"], ["b", "c"]] * 5
        v1 = FastTextEmbedding(dim=4, epochs=1, rng=42).fit(sentences).vector("b")
        v2 = FastTextEmbedding(dim=4, epochs=1, rng=42).fit(sentences).vector("b")
        np.testing.assert_allclose(v1, v2)

    def test_vocabulary_sorted_by_frequency(self):
        sentences = [["common"]] * 5 + [["rare", "common"]]
        model = FastTextEmbedding(dim=4, epochs=1, rng=0).fit(sentences)
        assert model.vocabulary[0] == "common"

    def test_norms_bounded_after_training(self, fitted):
        norms = np.linalg.norm(fitted._in, axis=1)
        assert norms.max() <= 10.0 + 1e-9

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            FastTextEmbedding(dim=0)
