"""Unit tests for the BART-equivalent error injector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import Dataset
from repro.errors import (
    ErrorProfile,
    delete_char,
    inject_errors,
    inject_x,
    insert_char,
    random_typo,
    substitute_char,
    transpose_chars,
)

words = st.text(alphabet="abcdef012", min_size=1, max_size=10)


class TestTypoChannels:
    def test_inject_x_replaces_one_char(self):
        out = inject_x("60612", rng=0)
        assert out != "60612"
        assert out.count("x") >= 1
        assert len(out) == 5

    def test_inject_x_on_all_x_inserts(self):
        out = inject_x("xx", rng=0)
        assert out == "xxx"

    def test_inject_x_on_empty(self):
        assert inject_x("", rng=0) == "x"

    @given(words)
    def test_substitute_changes_value(self, value):
        assert substitute_char(value, rng=0) != value

    @given(words)
    def test_insert_lengthens(self, value):
        assert len(insert_char(value, rng=0)) == len(value) + 1

    @given(words)
    def test_delete_shortens(self, value):
        assert len(delete_char(value, rng=0)) == len(value) - 1

    def test_transpose(self):
        assert transpose_chars("ab", rng=0) == "ba"

    def test_transpose_rejects_uniform(self):
        with pytest.raises(ValueError):
            transpose_chars("aaa", rng=0)

    def test_empty_string_channels_raise(self):
        with pytest.raises(ValueError):
            substitute_char("", rng=0)
        with pytest.raises(ValueError):
            delete_char("", rng=0)

    @given(words)
    @settings(max_examples=40)
    def test_random_typo_always_differs(self, value):
        assert random_typo(value, rng=0) != value


class TestErrorProfile:
    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            ErrorProfile(error_rate=1.5)
        with pytest.raises(ValueError):
            ErrorProfile(error_rate=0.1, typo_fraction=-0.1)


class TestInjectErrors:
    @pytest.fixture
    def clean(self):
        rng = np.random.default_rng(0)
        rows = [
            [f"key{i % 7}", f"value{i % 5}", f"{rng.integers(10000, 99999)}"]
            for i in range(200)
        ]
        return Dataset.from_rows(["k", "v", "num"], rows)

    def test_exact_error_count(self, clean):
        profile = ErrorProfile(error_rate=0.05)
        dirty, truth = inject_errors(clean, profile, rng=0)
        errors = truth.error_cells(dirty)
        assert len(errors) == round(0.05 * clean.num_cells)

    def test_zero_rate_is_identity(self, clean):
        dirty, truth = inject_errors(clean, ErrorProfile(error_rate=0.0), rng=0)
        assert dirty == clean
        assert truth.error_cells(dirty) == []

    def test_clean_dataset_unmodified(self, clean):
        snapshot = clean.copy()
        inject_errors(clean, ErrorProfile(error_rate=0.1), rng=0)
        assert clean == snapshot

    def test_swaps_stay_in_domain(self, clean):
        profile = ErrorProfile(error_rate=0.2, typo_fraction=0.0)
        dirty, truth = inject_errors(clean, profile, rng=0)
        domains = {a: set(clean.domain(a)) for a in clean.attributes}
        in_domain = sum(
            1 for c in truth.error_cells(dirty) if dirty.value(c) in domains[c.attr]
        )
        # Nearly all swap errors come from the clean domain (typo fallback
        # only fires for single-value domains, absent here).
        assert in_domain == len(truth.error_cells(dirty))

    def test_attribute_restriction(self, clean):
        profile = ErrorProfile(error_rate=0.2, attributes=("v",))
        dirty, truth = inject_errors(clean, profile, rng=0)
        assert all(c.attr == "v" for c in truth.error_cells(dirty))

    def test_unknown_attribute_rejected(self, clean):
        with pytest.raises(ValueError):
            inject_errors(clean, ErrorProfile(error_rate=0.1, attributes=("zzz",)))

    def test_x_style_profile(self, clean):
        profile = ErrorProfile(error_rate=0.1, x_style_typos=True)
        dirty, truth = inject_errors(clean, profile, rng=0)
        errors = truth.error_cells(dirty)
        with_x = sum(1 for c in errors if "x" in dirty.value(c))
        assert with_x / len(errors) > 0.9

    def test_deterministic(self, clean):
        profile = ErrorProfile(error_rate=0.1)
        d1, _ = inject_errors(clean, profile, rng=3)
        d2, _ = inject_errors(clean, profile, rng=3)
        assert d1 == d2
