"""Unit tests for metrics, splits, and the experiment runner."""

import pytest

from repro.data import load_dataset
from repro.dataset import Cell
from repro.evaluation import evaluate_predictions, make_split, run_trials
from repro.evaluation.metrics import Metrics


class TestMetrics:
    def test_perfect(self):
        cells = [Cell(i, "a") for i in range(10)]
        truth = cells[:3]
        m = evaluate_predictions(truth, truth, cells)
        assert m.precision == m.recall == m.f1 == 1.0

    def test_partial(self):
        cells = [Cell(i, "a") for i in range(10)]
        truth = cells[:4]
        predicted = cells[2:6]  # 2 hits, 2 false alarms
        m = evaluate_predictions(predicted, truth, cells)
        assert m.precision == pytest.approx(0.5)
        assert m.recall == pytest.approx(0.5)
        assert m.f1 == pytest.approx(0.5)

    def test_zero_predictions_zero_precision(self):
        cells = [Cell(0, "a")]
        m = evaluate_predictions([], cells, cells)
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0

    def test_scope_intersection(self):
        scope = [Cell(0, "a")]
        out_of_scope = [Cell(5, "a")]
        m = evaluate_predictions(out_of_scope, out_of_scope, scope)
        assert m.true_positives == 0

    def test_as_row(self):
        m = Metrics(0.12345, 0.5, 0.2)
        assert m.as_row() == {"P": 0.123, "R": 0.5, "F1": 0.2}


class TestSplits:
    @pytest.fixture(scope="class")
    def bundle(self):
        return load_dataset("soccer", num_rows=200, seed=0)

    def test_disjoint_and_complete(self, bundle):
        split = make_split(bundle, 0.1, sampling_fraction=0.2, rng=0)
        train = set(split.training_cells)
        sampling = set(split.sampling_cells)
        test = set(split.test_cells)
        assert train.isdisjoint(sampling)
        assert train.isdisjoint(test)
        assert sampling.isdisjoint(test)
        assert len(train) + len(sampling) + len(test) == bundle.dirty.num_cells

    def test_training_fraction_respected(self, bundle):
        split = make_split(bundle, 0.1, rng=0)
        expected_rows = round(0.1 * bundle.dirty.num_rows)
        assert len(split.training) == expected_rows * len(bundle.dirty.attributes)

    def test_whole_rows_labelled(self, bundle):
        split = make_split(bundle, 0.05, rng=1)
        rows = {c.row for c in split.training_cells}
        assert len(split.training_cells) == len(rows) * len(bundle.dirty.attributes)

    def test_labels_match_truth(self, bundle):
        split = make_split(bundle, 0.05, rng=2)
        for example in split.training:
            assert example.is_error == bundle.truth.is_error(example.cell, bundle.dirty)

    def test_invalid_fractions(self, bundle):
        with pytest.raises(ValueError):
            make_split(bundle, 0.0)
        with pytest.raises(ValueError):
            make_split(bundle, 0.5, sampling_fraction=1.0)


class TestRunner:
    def test_runs_method_per_trial(self):
        bundle = load_dataset("soccer", num_rows=150, seed=0)
        calls = []

        def oracle_method(b, split, rng):
            calls.append(1)
            return b.error_cells  # perfect detector

        result = run_trials(oracle_method, bundle, 0.1, num_trials=3, seed=0)
        assert len(calls) == 3
        assert result.median.f1 == 1.0
        assert result.mean_f1 == 1.0
        assert result.std_f1 == 0.0
        assert len(result.runtimes) == 3

    def test_median_couples_metrics(self):
        bundle = load_dataset("soccer", num_rows=150, seed=0)
        counter = iter([0.0, 0.5, 1.0])

        def variable_method(b, split, rng):
            fraction = next(counter)
            errors = sorted(b.error_cells, key=lambda c: (c.row, c.attr))
            keep = int(len(errors) * fraction)
            return set(errors[:keep])

        result = run_trials(variable_method, bundle, 0.1, num_trials=3, seed=0)
        f1s = sorted(m.f1 for m in result.trials)
        assert result.median.f1 == f1s[1]

    def test_no_trials_raises(self):
        from repro.evaluation.runner import ExperimentResult

        with pytest.raises(ValueError):
            _ = ExperimentResult().median


class TestMedianTieBreak:
    """The documented median rule: rank by (f1, precision, recall), take the
    lower middle for even counts — always an observed trial, never an
    interpolation, and pessimistic rather than optimistic."""

    @staticmethod
    def _result(*metrics):
        from repro.evaluation.runner import ExperimentResult

        result = ExperimentResult()
        result.trials.extend(metrics)
        return result

    def test_zero_trials_raises(self):
        with pytest.raises(ValueError, match="no trials"):
            _ = self._result().median

    def test_single_trial_is_its_own_median(self):
        only = Metrics(precision=0.4, recall=0.6, f1=0.48)
        assert self._result(only).median == only

    def test_two_trials_report_the_weaker_one(self):
        weak = Metrics(precision=0.2, recall=0.2, f1=0.2)
        strong = Metrics(precision=0.9, recall=0.9, f1=0.9)
        assert self._result(strong, weak).median == weak
        assert self._result(weak, strong).median == weak

    def test_even_count_takes_lower_middle(self):
        trials = [Metrics(precision=f, recall=f, f1=f) for f in (0.1, 0.4, 0.6, 0.9)]
        assert self._result(*reversed(trials)).median == trials[1]

    def test_equal_f1_breaks_ties_on_precision_then_recall(self):
        low_p = Metrics(precision=0.3, recall=0.7, f1=0.5)
        high_p = Metrics(precision=0.8, recall=0.4, f1=0.5)
        # Ranked by (f1, precision, recall): low_p sorts first and the
        # lower middle of two is reported.
        assert self._result(high_p, low_p).median == low_p
        assert self._result(low_p, high_p).median == low_p

    def test_odd_count_unchanged_by_tie_break(self):
        trials = [Metrics(precision=f, recall=f, f1=f) for f in (0.2, 0.5, 0.8)]
        assert self._result(*trials).median == trials[1]
