"""Tests for markdown report generation."""

import pytest

from repro.evaluation.metrics import Metrics
from repro.evaluation.report import markdown_table, metrics_table, sweep_table
from repro.evaluation.runner import ExperimentResult


class TestMarkdownTable:
    def test_structure(self):
        table = markdown_table(["a", "b"], [["1", "22"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}

    def test_alignment(self):
        table = markdown_table(["col"], [["x"], ["longer"]])
        lines = table.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            markdown_table([], [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [["1", "2"]])


class TestMetricsTable:
    def test_renders_methods_in_order(self):
        results = {
            "AUG": Metrics(0.9, 0.8, 0.847),
            "CV": Metrics(0.1, 0.5, 0.167),
        }
        table = metrics_table(results)
        lines = table.splitlines()
        assert "AUG" in lines[2] and "CV" in lines[3]
        assert "0.847" in lines[2]

    def test_title(self):
        table = metrics_table({"AUG": Metrics(1, 1, 1)}, title="Table 2")
        assert table.startswith("### Table 2")


class TestSweepTable:
    def _result(self, f1s):
        result = ExperimentResult()
        for f1 in f1s:
            result.trials.append(Metrics(f1, f1, f1))
            result.runtimes.append(1.0)
        return result

    def test_median_row(self):
        results = {"5%": self._result([0.2, 0.5, 0.8])}
        table = sweep_table(results, parameter_name="T size")
        assert "T size" in table
        assert "0.500" in table  # median trial

    def test_runtime_column_optional(self):
        results = {"x": self._result([0.5])}
        assert "runtime" not in sweep_table(results)
        assert "runtime" in sweep_table(results, include_runtime=True)

    def test_mean_std_formatting(self):
        results = {"x": self._result([0.4, 0.6])}
        assert "0.500±0.100" in sweep_table(results)
