"""Tests for extension features: AL strategies, multi-edit channel,
constraint discovery entry point, training-step floor."""

import numpy as np
import pytest

from repro.augmentation.policy import CompositePolicy, Policy
from repro.baselines.active_learning import (
    SELECTION_STRATEGIES,
    entropy_selection,
    error_seeking_selection,
    random_selection,
    uncertainty_selection,
)
from repro.constraints import discover_constraints
from repro.constraints.discovery import score_candidate_fds
from repro.core.training import TrainerConfig
from repro.dataset import Dataset


class TestSelectionStrategies:
    probs = np.array([0.05, 0.45, 0.95, 0.55, 0.5])

    def test_uncertainty_picks_boundary_first(self):
        order = uncertainty_selection(self.probs, np.random.default_rng(0))
        assert order[0] == 4  # p = 0.5

    def test_entropy_matches_uncertainty_ranking(self):
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(
            entropy_selection(self.probs, rng)[:1], uncertainty_selection(self.probs, rng)[:1]
        )

    def test_error_seeking_picks_highest_first(self):
        order = error_seeking_selection(self.probs, np.random.default_rng(0))
        assert order[0] == 2  # p = 0.95

    def test_random_is_permutation(self):
        order = random_selection(self.probs, np.random.default_rng(0))
        assert sorted(order) == list(range(5))

    def test_registry_complete(self):
        assert set(SELECTION_STRATEGIES) == {
            "uncertainty",
            "entropy",
            "error_seeking",
            "random",
        }

    def test_unknown_strategy_rejected(self):
        from repro.baselines import ActiveLearningDetector

        with pytest.raises(ValueError, match="unknown strategy"):
            ActiveLearningDetector(lambda c: None, [], strategy="nope")


class TestCompositePolicy:
    @pytest.fixture
    def base(self):
        return Policy.learn([("60612", "6x612"), ("60614", "6061x"), ("ab", "axb")])

    def test_single_edit_when_continue_zero(self, base):
        policy = CompositePolicy(base, max_edits=3, continue_probability=0.0)
        rng = np.random.default_rng(0)
        out = policy.transform("60612", rng)
        assert out is not None and out != "60612"

    def test_multi_edit_changes_value(self, base):
        policy = CompositePolicy(base, max_edits=4, continue_probability=0.9)
        rng = np.random.default_rng(1)
        results = {policy.transform("60612", rng) for _ in range(30)}
        results.discard(None)
        assert results  # produces transformed values
        assert all(r != "60612" for r in results)

    def test_never_returns_original(self, base):
        policy = CompositePolicy(base, max_edits=5, continue_probability=0.8)
        rng = np.random.default_rng(2)
        for _ in range(50):
            out = policy.transform("60612", rng)
            assert out != "60612"

    def test_invalid_params(self, base):
        with pytest.raises(ValueError):
            CompositePolicy(base, max_edits=0)
        with pytest.raises(ValueError):
            CompositePolicy(base, continue_probability=1.0)

    def test_inherits_distribution(self, base):
        policy = CompositePolicy(base)
        for t in base.transformations:
            assert policy.probability(t) == pytest.approx(base.probability(t))


class TestDiscoverConstraints:
    @pytest.fixture
    def dataset(self):
        rows = []
        for i in range(60):
            key = f"k{i % 6}"
            rows.append([key, f"v{i % 6}", f"{(i % 6) // 2}", f"noise{i % 17}"])
        return Dataset.from_rows(["k", "v", "w", "noise"], rows)

    def test_finds_valid_fds(self, dataset):
        found = discover_constraints(dataset, min_alpha=0.999)
        names = {c.name for c in found}
        assert "k->v" in names and "v->k" in names and "k->w" in names

    def test_ordered_by_alpha(self, dataset):
        found = discover_constraints(dataset, min_alpha=0.5)
        scored = {s.constraint.name: s.alpha for s in score_candidate_fds(dataset)}
        alphas = [scored[c.name] for c in found if c.name in scored]
        assert alphas == sorted(alphas, reverse=True)

    def test_limit(self, dataset):
        assert len(discover_constraints(dataset, min_alpha=0.0, limit=2)) == 2

    def test_pair_lhs_discovery(self):
        # c is determined only by the pair (a, b).
        rows = []
        for i in range(40):
            a, b = f"a{i % 4}", f"b{(i // 4) % 3}"
            rows.append([a, b, f"c-{a}-{b}"])
        d = Dataset.from_rows(["a", "b", "c"], rows)
        singles = discover_constraints(d, min_alpha=0.999, max_lhs_size=1)
        pairs = discover_constraints(d, min_alpha=0.999, max_lhs_size=2)
        single_names = {c.name for c in singles}
        pair_names = {c.name for c in pairs}
        assert "a&b->c" in pair_names
        assert "a&b->c" not in single_names

    def test_invalid_lhs_size(self, dataset):
        with pytest.raises(ValueError):
            score_candidate_fds(dataset, max_lhs_size=3)


class TestTrainingStepFloor:
    def test_min_steps_raises_epochs(self):
        from repro.core import JointModel, train_model
        from repro.features.pipeline import CellFeatures

        feats = CellFeatures(numeric=np.random.default_rng(0).normal(size=(16, 3)), branches={})
        labels = np.zeros(16, dtype=int)
        model = JointModel(numeric_dim=3, branch_dims={}, rng=0)
        history = train_model(
            model, feats, labels, TrainerConfig(epochs=2, batch_size=16, min_steps=10, seed=0)
        )
        # 1 step/epoch, floor of 10 steps -> 10 epochs despite epochs=2.
        assert len(history) == 10

    def test_no_floor_keeps_epochs(self):
        from repro.core import JointModel, train_model
        from repro.features.pipeline import CellFeatures

        feats = CellFeatures(numeric=np.ones((8, 2)), branches={})
        labels = np.zeros(8, dtype=int)
        model = JointModel(numeric_dim=2, branch_dims={}, rng=0)
        history = train_model(model, feats, labels, TrainerConfig(epochs=3, min_steps=0, seed=0))
        assert len(history) == 3
