"""Unit tests for the repro.faults package: taxonomy, retry, injector, breaker."""

from __future__ import annotations

import errno
import os

import pytest

from repro.faults import (
    BreakerOpen,
    CircuitBreaker,
    FAULT_POINTS,
    FaultClass,
    FaultInjector,
    FaultSpecError,
    RetryExhausted,
    RetryPolicy,
    active_injector,
    checked_write,
    classify_exception,
    get_default_policy,
    inject,
    install_from_env,
    is_fatal,
    is_transient,
    set_default_policy,
    trip,
    use_policy,
)
from repro.faults.inject import parse_spec
from repro.faults.taxonomy import classify_errno


def oserror(name: str) -> OSError:
    return OSError(getattr(errno, name), f"synthetic {name}")


@pytest.fixture(autouse=True)
def _reset_ambient():
    """Every test starts and ends with a pristine ambient policy."""
    set_default_policy(None)
    yield
    set_default_policy(None)


# --------------------------------------------------------------------------- #
# Taxonomy
# --------------------------------------------------------------------------- #


class TestTaxonomy:
    @pytest.mark.parametrize(
        "name", ["EAGAIN", "EWOULDBLOCK", "EINTR", "ESTALE", "ETIMEDOUT", "EBUSY"]
    )
    def test_transient_errnos(self, name):
        assert classify_errno(getattr(errno, name), "read") is FaultClass.TRANSIENT
        assert classify_errno(getattr(errno, name), "write") is FaultClass.TRANSIENT

    @pytest.mark.parametrize(
        "name", ["ENOSPC", "EDQUOT", "EROFS", "EACCES", "EPERM", "ENAMETOOLONG"]
    )
    def test_fatal_errnos(self, name):
        assert classify_errno(getattr(errno, name), "read") is FaultClass.FATAL
        assert classify_errno(getattr(errno, name), "write") is FaultClass.FATAL

    def test_eio_is_transient_on_read_fatal_on_write(self):
        assert classify_errno(errno.EIO, "read") is FaultClass.TRANSIENT
        assert classify_errno(errno.EIO, "write") is FaultClass.FATAL

    def test_unknown_errno_is_unknown(self):
        assert classify_errno(None, "read") is FaultClass.UNKNOWN

    def test_file_existence_exceptions_are_answers_not_faults(self):
        # A missing file is a cache miss; an existing file is a lost claim
        # race.  Retrying either would loop on the *answer*.
        assert classify_exception(FileNotFoundError(2, "x"), "read") is FaultClass.UNKNOWN
        assert classify_exception(FileExistsError(17, "x"), "write") is FaultClass.UNKNOWN

    def test_non_oserror_is_unknown(self):
        assert classify_exception(ValueError("nope"), "read") is FaultClass.UNKNOWN

    def test_predicates(self):
        assert is_transient(oserror("EAGAIN"), "write")
        assert not is_transient(oserror("ENOSPC"), "write")
        assert is_fatal(oserror("ENOSPC"), "write")
        assert not is_fatal(oserror("EAGAIN"), "write")
        assert not is_fatal(ValueError("x"), "write")  # unknown, not fatal


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #


def recording_policy(**overrides) -> tuple[RetryPolicy, list[float]]:
    sleeps: list[float] = []
    kwargs = dict(max_attempts=4, base_delay=0.05, seed=7, sleep=sleeps.append)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs), sleeps


class TestRetryPolicy:
    def test_transient_fault_retries_to_success(self):
        policy, sleeps = recording_policy()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise oserror("EAGAIN")
            return "done"

        assert policy.call(flaky, point="store.append", op="write") == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2  # one backoff per failed attempt
        assert policy.stats.retries == 2
        assert policy.stats.by_point == {"store.append": 2}

    def test_fatal_fault_never_retries(self):
        policy, sleeps = recording_policy()
        with pytest.raises(OSError) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(oserror("ENOSPC")),
                        point="store.append", op="write")
        assert excinfo.value.errno == errno.ENOSPC
        assert not isinstance(excinfo.value, RetryExhausted)
        assert sleeps == []
        assert policy.stats.fatal == 1

    def test_unknown_fault_never_retries(self):
        policy, sleeps = recording_policy()
        with pytest.raises(ValueError):
            policy.call(lambda: (_ for _ in ()).throw(ValueError("corrupt")),
                        point="store.read")
        assert sleeps == []

    def test_exhaustion_raises_retry_exhausted_with_errno(self):
        policy, sleeps = recording_policy(max_attempts=3)

        def always():
            raise oserror("ESTALE")

        with pytest.raises(RetryExhausted) as excinfo:
            policy.call(always, point="lease.renew", op="write")
        exc = excinfo.value
        assert isinstance(exc, OSError)  # call sites catching OSError still work
        assert exc.errno == errno.ESTALE
        assert exc.point == "lease.renew"
        assert exc.attempts == 3
        assert len(sleeps) == 2  # no sleep after the final attempt
        assert policy.stats.exhausted == 1

    def test_backoff_is_deterministic_and_bounded(self):
        a = RetryPolicy(max_attempts=6, base_delay=0.05, max_delay=0.4, seed=3)
        b = RetryPolicy(max_attempts=6, base_delay=0.05, max_delay=0.4, seed=3)
        assert list(a.delays("shard.read")) == list(b.delays("shard.read"))
        # Jitter stays within the fractional spread around each raw delay.
        for attempt in range(1, 6):
            raw = min(0.4, 0.05 * 2 ** (attempt - 1))
            d = a.delay("shard.read", attempt)
            assert raw * 0.75 <= d <= raw * 1.25
        # A different seed gives a different schedule.
        c = RetryPolicy(max_attempts=6, base_delay=0.05, max_delay=0.4, seed=4)
        assert list(c.delays("shard.read")) != list(a.delays("shard.read"))

    def test_zero_base_delay_never_sleeps_nonzero(self):
        policy, sleeps = recording_policy(base_delay=0.0, max_delay=0.0)
        with pytest.raises(RetryExhausted):
            policy.call(lambda: (_ for _ in ()).throw(oserror("EAGAIN")),
                        point="store.append", op="write")
        assert all(s == 0.0 for s in sleeps)

    def test_on_retry_hook_runs_before_each_backoff(self):
        policy, _ = recording_policy(max_attempts=3)
        seen: list[int] = []

        def always():
            raise oserror("EINTR")

        with pytest.raises(RetryExhausted):
            policy.call(always, point="store.append", op="write",
                        on_retry=lambda exc, attempt: seen.append(attempt))
        assert seen == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_ambient_policy_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BASE_DELAY", "0")
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "2")
        set_default_policy(None)  # force a re-read of the environment
        policy = get_default_policy()
        assert policy.base_delay == 0.0
        assert policy.max_attempts == 2

    def test_use_policy_scopes_the_ambient_default(self):
        inner, _ = recording_policy()
        before = get_default_policy()
        with use_policy(inner):
            assert get_default_policy() is inner
        assert get_default_policy() is before


# --------------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------------- #


class TestFaultSpec:
    def test_parse_roundtrip(self):
        spec = "store.append=first:2:EAGAIN;lease.renew=every:3:ESTALE"
        injector = FaultInjector(spec)
        assert injector.spec() == spec

    def test_comma_separator_and_defaults(self):
        rules = parse_spec("store.append=first:1,shard.read=torn:2")
        assert rules[0].errno_name == "EAGAIN"
        assert rules[1].errno_name == "EINTR"  # torn default: interrupted write
        assert rules[1].torn

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense",
            "unknown.point=first:1",
            "store.append=sometimes:1",
            "store.append=first:0",
            "store.append=first:1.5",
            "store.append=rate:2.0",
            "store.append=first:1:ENOTANERRNO",
            "store.append=first:1:EAGAIN:extra",
            "",
            "  ;  ",
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_every_known_point_parses(self):
        for point in FAULT_POINTS:
            assert parse_spec(f"{point}=first:1")[0].point == point


class TestFaultInjector:
    def test_first_n_schedule(self):
        injector = FaultInjector("store.append=first:2:EAGAIN")
        for _ in range(2):
            with pytest.raises(OSError) as excinfo:
                injector.fire("store.append")
            assert excinfo.value.errno == errno.EAGAIN
        injector.fire("store.append")  # third invocation passes
        snap = injector.snapshot()["store.append"]
        assert snap == {"invocations": 3, "fired": 2,
                        "rule": "store.append=first:2:EAGAIN"}

    def test_every_kth_schedule(self):
        injector = FaultInjector("lease.renew=every:3:ESTALE")
        outcomes = []
        for _ in range(9):
            try:
                injector.fire("lease.renew")
                outcomes.append("ok")
            except OSError:
                outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail"] * 3

    def test_rate_schedule_is_seed_deterministic(self):
        def fired_pattern(seed: int) -> list[bool]:
            injector = FaultInjector("shard.read=rate:0.5:EIO", seed=seed)
            pattern = []
            for _ in range(64):
                try:
                    injector.fire("shard.read")
                    pattern.append(False)
                except OSError:
                    pattern.append(True)
            return pattern

        assert fired_pattern(1) == fired_pattern(1)
        assert fired_pattern(1) != fired_pattern(2)
        assert 10 < sum(fired_pattern(1)) < 54  # roughly half

    def test_unnamed_points_never_fire(self):
        injector = FaultInjector("store.append=first:99")
        for _ in range(5):
            injector.fire("lease.claim")

    def test_torn_write_lands_partial_bytes(self, tmp_path):
        path = tmp_path / "log"
        injector = FaultInjector("store.append=torn:1")
        data = b"0123456789"
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
        try:
            with pytest.raises(OSError) as excinfo:
                injector.write("store.append", fd, data)
            assert excinfo.value.errno == errno.EINTR
            assert injector.write("store.append", fd, data) == len(data)
        finally:
            os.close(fd)
        assert path.read_bytes() == data[:5] + data

    def test_inject_context_installs_and_restores(self):
        assert active_injector() is None
        with inject("store.append=first:1") as injector:
            assert active_injector() is injector
            with pytest.raises(OSError):
                trip("store.append")
        assert active_injector() is None
        trip("store.append")  # no-op with nothing installed

    def test_inject_contexts_nest(self):
        with inject("store.append=first:9") as outer:
            with inject("lease.claim=first:9") as inner:
                assert active_injector() is inner
            assert active_injector() is outer

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "lease.claim=first:1:ESTALE")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "9")
        installed = install_from_env()
        try:
            assert installed is not None
            assert installed.seed == 9
            assert installed is install_from_env()  # idempotent per process
            with pytest.raises(OSError):
                trip("lease.claim")
        finally:
            # Scrub the process-global installation for later tests.
            monkeypatch.delenv("REPRO_FAULTS")
            import repro.faults.inject as inj

            inj._installed = None
            inj._env_checked = False

    def test_checked_write_clean_path(self, tmp_path):
        path = tmp_path / "clean"
        fd = os.open(path, os.O_WRONLY | os.O_CREAT)
        try:
            assert checked_write("store.append", fd, b"abc") == 3
        finally:
            os.close(fd)
        assert path.read_bytes() == b"abc"


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        kwargs = dict(failure_threshold=3, cooldown=30.0, clock=clock)
        kwargs.update(overrides)
        return CircuitBreaker("load:test", **kwargs), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure(RuntimeError("boom"))
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.before_call()
        breaker.record_failure(RuntimeError("boom"))
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after == pytest.approx(30.0)
        assert "boom" in excinfo.value.last_error

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure("x")
        breaker.record_failure("x")
        breaker.record_success()
        breaker.record_failure("x")
        breaker.record_failure("x")
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_heals_the_circuit(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure("dead disk")
        assert breaker.state == CircuitBreaker.OPEN
        clock.now += 30.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before_call()  # the probe is admitted
        with pytest.raises(BreakerOpen):
            breaker.before_call()  # but only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.retry_after() == 0.0

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure("dead")
        clock.now += 31.0
        breaker.before_call()
        breaker.record_failure("still dead")
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(30.0)

    def test_as_dict(self):
        breaker, _ = self.make(failure_threshold=1)
        breaker.record_failure("why")
        snapshot = breaker.as_dict()
        assert snapshot["state"] == "open"
        assert snapshot["trips"] == 1
        assert snapshot["last_error"] == "why"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=0)
