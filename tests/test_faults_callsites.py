"""Errno-injection tests for every retried I/O call site.

Each subsystem is exercised under the deterministic fault injector at its
named fault point: the transient path (fault heals within the retry
budget), the exhaustion path (fault outlasts the budget), and the fatal
path (never retried).  No test ever real-sleeps — the ambient policy's
``sleep`` is a recording stub.
"""

from __future__ import annotations

import errno
import json
import threading

import numpy as np
import pytest

from repro.artifacts.store import ArtifactStore
from repro.coordination.heartbeat import HeartbeatThread
from repro.coordination.leases import WorkQueue, read_audit
from repro.dataset.sharded import ShardedDataset, ShardQuarantinedError, ShardWriter
from repro.evaluation.store import ResultStore
from repro.faults import RetryPolicy, inject, use_policy


@pytest.fixture(autouse=True)
def fast_policy():
    """Ambient policy with injectable (recorded, never real) sleeps."""
    sleeps: list[float] = []
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=1,
                         sleep=sleeps.append)
    with use_policy(policy):
        yield policy


# --------------------------------------------------------------------------- #
# ArtifactStore (satellite: fatal-errno classification + degraded flag)
# --------------------------------------------------------------------------- #


PAYLOAD = {"weights": np.arange(6, dtype=np.float64).reshape(2, 3), "bias": 0.5}


def assert_payload(stored: dict) -> None:
    assert stored is not None
    np.testing.assert_array_equal(stored["weights"], PAYLOAD["weights"])
    assert stored["bias"] == 0.5


class TestArtifactStoreFaults:
    def test_transient_write_fault_is_retried(self, tmp_path, fast_policy):
        store = ArtifactStore(tmp_path)
        with inject("artifacts.object_write=first:2:EAGAIN"):
            store.put("ab" * 32, PAYLOAD)
        assert store.stats.write_errors == 0
        assert not store.stats.degraded
        assert fast_policy.stats.retries == 2
        # The object landed on disk: a cold store serves it.
        assert_payload(ArtifactStore(tmp_path).get("ab" * 32))

    def test_fatal_write_fault_degrades_and_warns_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with inject("artifacts.object_write=first:2:ENOSPC"):
            with pytest.warns(RuntimeWarning, match="fatal disk fault"):
                store.put("ab" * 32, PAYLOAD)
            # The second fatal fault is counted silently — no warning spam.
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                store.put("cd" * 32, PAYLOAD)
        assert store.stats.fatal_errors == 2
        assert store.stats.write_errors == 2
        assert store.stats.degraded
        assert "DEGRADED" in store.stats.summary()
        assert store.stats.as_dict()["degraded"] is True
        # The memory tier still serves both payloads.
        assert_payload(store.get("ab" * 32))
        assert_payload(store.get("cd" * 32))

    def test_exhausted_write_budget_is_not_fatal(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with inject("artifacts.object_write=first:99:EAGAIN"):
            store.put("ab" * 32, PAYLOAD)
        assert store.stats.write_errors == 1
        assert store.stats.fatal_errors == 0
        assert not store.stats.degraded
        assert_payload(store.get("ab" * 32))  # memory tier

    def test_transient_read_fault_is_retried(self, tmp_path, fast_policy):
        ArtifactStore(tmp_path).put("ab" * 32, PAYLOAD)
        cold = ArtifactStore(tmp_path)
        with inject("artifacts.object_read=first:2:EIO"):
            assert_payload(cold.get("ab" * 32))
        assert cold.stats.disk_hits == 1
        assert fast_policy.stats.retries == 2

    def test_persistent_read_fault_misses_without_destroying_the_object(
        self, tmp_path
    ):
        ArtifactStore(tmp_path).put("ab" * 32, PAYLOAD)
        cold = ArtifactStore(tmp_path)
        with inject("artifacts.object_read=first:99:EIO"):
            assert cold.get("ab" * 32) is None
        assert cold.stats.read_errors == 1
        assert cold.stats.corrupt_dropped == 0
        # The bytes were intact all along: once the fault clears, it hits.
        assert_payload(cold.get("ab" * 32))

    def test_corrupt_content_is_still_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, PAYLOAD)
        store.clear_memory()
        store.object_path("ab" * 32).write_bytes(b"not an npz")
        assert store.get("ab" * 32) is None
        assert store.stats.corrupt_dropped == 1
        assert not store.object_path("ab" * 32).exists()

    def test_index_append_fault_never_fails_the_put(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with inject("artifacts.index_append=first:99:EAGAIN"):
            store.put("ab" * 32, PAYLOAD)
        # The object landed even though the manifest append kept faulting.
        assert_payload(ArtifactStore(tmp_path).get("ab" * 32))
        assert list(store.index()) == []


# --------------------------------------------------------------------------- #
# ResultStore (satellite: compaction temp-file hygiene)
# --------------------------------------------------------------------------- #


def record(fp: str, **extra) -> dict:
    return {"fingerprint": fp, "metrics": {"f1": 0.5}, **extra}


class TestResultStoreFaults:
    def test_transient_append_fault_is_retried(self, tmp_path, fast_policy):
        store = ResultStore(tmp_path / "s.jsonl")
        with inject("store.append=first:2:EAGAIN"):
            store.put(record("aa"))
        assert fast_policy.stats.retries == 2
        reloaded = ResultStore(tmp_path / "s.jsonl")
        assert reloaded.get("aa") == record("aa")
        assert reloaded.skipped_lines == 0

    def test_torn_append_is_healed_before_the_retry(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put(record("aa"))
        with inject("store.append=torn:1"):
            store.put(record("bb"))
        reloaded = ResultStore(tmp_path / "s.jsonl")
        # Both records parse; the torn fragment is one healed, skipped line.
        assert reloaded.get("aa") == record("aa")
        assert reloaded.get("bb") == record("bb")
        assert reloaded.skipped_lines == 1

    def test_exhausted_append_raises_and_leaves_store_parseable(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.put(record("aa"))
        with inject("store.append=first:99:EAGAIN"):
            with pytest.raises(OSError):
                store.put(record("bb"))
        reloaded = ResultStore(tmp_path / "s.jsonl")
        assert reloaded.get("aa") == record("aa")
        assert "bb" not in reloaded

    def test_fatal_append_raises_immediately(self, tmp_path, fast_policy):
        store = ResultStore(tmp_path / "s.jsonl")
        with inject("store.append=first:1:ENOSPC"):
            with pytest.raises(OSError) as excinfo:
                store.put(record("aa"))
        assert excinfo.value.errno == errno.ENOSPC
        assert fast_policy.stats.retries == 0

    def test_transient_refresh_fault_is_retried(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = ResultStore(path)
        reader = ResultStore(path)
        writer.put(record("aa"))
        with inject("store.read=first:2:ESTALE"):
            assert reader.refresh() == 1
        assert reader.get("aa") == record("aa")

    def test_transient_load_fault_is_retried(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).put(record("aa"))
        with inject("store.read=first:2:EIO"):
            assert ResultStore(path).get("aa") == record("aa")

    def test_stale_compact_tmp_is_cleaned_on_load(self, tmp_path):
        """Regression: a compactor killed between its tmp write and the
        os.replace used to leave the orphan sibling forever."""
        path = tmp_path / "s.jsonl"
        ResultStore(path).put(record("aa"))
        orphan = tmp_path / "s.jsonl.compact-12345"
        orphan.write_bytes(b'{"fingerprint": "stale"}\n')
        store = ResultStore(path)
        assert store.stale_tmp_removed == 1
        assert not orphan.exists()
        assert store.get("aa") == record("aa")

    def test_compact_crash_between_write_and_replace(self, tmp_path):
        """An injected crash in the tmp→replace window must not leak the
        temp sibling, and the original store must survive untouched."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put(record("aa"))
        store.put(record("aa", round=2))
        with inject("store.compact=first:99:EROFS"):
            with pytest.raises(OSError):
                store.compact()
        assert list(tmp_path.glob("s.jsonl.compact-*")) == []
        reloaded = ResultStore(path)
        assert reloaded.get("aa") == record("aa", round=2)

    def test_compact_transient_fault_is_retried(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.put(record("aa"))
        store.put(record("aa", round=2))
        with inject("store.compact=first:2:EINTR"):
            kept, dropped = store.compact()
        assert (kept, dropped) == (1, 1)
        assert path.read_text().count("\n") == 1
        assert list(tmp_path.glob("s.jsonl.compact-*")) == []


# --------------------------------------------------------------------------- #
# WorkQueue leases + heartbeat
# --------------------------------------------------------------------------- #


FP = "f" * 40


class TestLeaseFaults:
    def test_transient_claim_fault_is_retried(self, tmp_path, fast_policy):
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        with inject("lease.claim=first:2:ESTALE"):
            assert queue.claim(FP) is True
        assert fast_policy.stats.retries == 2
        assert queue.held() == {FP}
        info = queue.read_lease(FP)
        assert info is not None and info.worker == "w1"

    def test_lost_claim_race_is_an_answer_not_a_fault(self, tmp_path, fast_policy):
        first = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        assert first.claim(FP)
        second = WorkQueue(tmp_path, worker_id="w2", clock=lambda: 10.0)
        with inject("lease.claim=first:99:ESTALE") as injector:
            assert second.claim(FP) is False
        # FileExistsError short-circuits before the injector ever fires.
        assert injector.snapshot()["lease.claim"]["fired"] >= 1
        assert fast_policy.stats.exhausted == 0 or second.held() == set()

    def test_fatal_claim_fault_reads_as_lost_race(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        with inject("lease.claim=first:1:EACCES"):
            assert queue.claim(FP) is False
        assert queue.held() == set()

    def test_transient_renew_fault_is_retried(self, tmp_path):
        clock = {"now": 10.0}
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: clock["now"])
        queue.claim(FP)
        clock["now"] = 20.0
        with inject("lease.renew=first:2:ESTALE"):
            assert queue.renew(FP) is True
        assert queue.renew_errors == 0
        assert queue.read_lease(FP).renewed_at == 20.0

    def test_persistent_renew_fault_keeps_the_lease(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        queue.claim(FP)
        with inject("lease.renew=first:99:ESTALE"):
            assert queue.renew(FP) is True  # still believed held
        assert queue.renew_errors == 1
        assert queue.held() == {FP}
        # No temp litter in the lease directory.
        assert list(queue.lease_dir.glob("*.tmp")) == []

    def test_release_does_not_unlink_a_reclaimed_peers_lease(self, tmp_path):
        """Regression: release used to unconditionally unlink the lease
        path, stripping the *new* owner after a reclaim + re-claim."""
        clock = {"now": 10.0}
        slow = WorkQueue(tmp_path, worker_id="slow", ttl=1.0,
                         clock=lambda: clock["now"])
        slow.claim(FP)
        clock["now"] = 100.0  # slow sleeps past its TTL
        peer = WorkQueue(tmp_path, worker_id="peer", ttl=1.0,
                         clock=lambda: clock["now"])
        assert peer.reclaim_stale([FP]) == [FP]
        assert peer.claim(FP)
        slow.release(FP, event="complete")
        info = slow.read_lease(FP)
        assert info is not None and info.worker == "peer"  # untouched
        events = [(e["event"], e["worker"]) for e in read_audit(tmp_path)]
        assert ("lost", "slow") in events
        assert ("complete", "slow") not in events

    def test_persistent_release_fault_is_audited_not_raised(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        queue.claim(FP)
        with inject("lease.release=first:99:ESTALE"):
            queue.release(FP, event="complete")
        assert queue.release_errors == 1
        assert queue.lease_path(FP).exists()  # left for TTL reclaim
        complete = [e for e in read_audit(tmp_path) if e["event"] == "complete"]
        assert complete and complete[0]["unlink_failed"] is True

    def test_torn_audit_append_is_healed(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        with inject("lease.audit=torn:1"):
            queue.audit("claim", FP)
        queue.audit("release", FP)
        events = [e["event"] for e in read_audit(tmp_path)]
        assert events == ["claim", "release"]

    def test_persistent_audit_fault_never_wedges_the_protocol(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w1", clock=lambda: 10.0)
        with inject("lease.audit=first:99:ESTALE"):
            assert queue.claim(FP) is True  # claim survives a dead audit log
        assert queue.held() == {FP}

    def test_heartbeat_thread_survives_renewal_exceptions(self, tmp_path):
        queue = WorkQueue(tmp_path, worker_id="w1", ttl=40.0, clock=lambda: 10.0)

        original = queue.renew_held
        calls = {"n": 0}

        def explosive():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("surprise")
            return original()

        queue.renew_held = explosive  # type: ignore[method-assign]
        beat = HeartbeatThread(queue, interval=0.005)
        with beat:
            deadline = threading.Event()
            for _ in range(200):
                if beat.renewals >= 2:
                    break
                deadline.wait(0.01)
        assert beat.errors >= 1
        assert beat.renewals >= 2  # it kept beating after the exception


# --------------------------------------------------------------------------- #
# ShardedDataset quarantine
# --------------------------------------------------------------------------- #


@pytest.fixture()
def shard_dir(tmp_path):
    writer = ShardWriter(tmp_path / "shards", ["a", "b"], shard_rows=2)
    for i in range(6):
        writer.append_row([f"a{i}", f"b{i}"])
    writer.close()
    return tmp_path / "shards"


class TestShardReadFaults:
    def test_transient_read_fault_is_retried(self, shard_dir, fast_policy):
        ds = ShardedDataset(shard_dir)
        with inject("shard.read=first:2:EIO"):
            assert ds.column_chunk("a", 0, 6) == [f"a{i}" for i in range(6)]
        assert fast_policy.stats.retries == 2
        assert ds.quarantined == {}

    def test_persistent_fault_quarantines_the_shard(self, shard_dir):
        ds = ShardedDataset(shard_dir)
        with inject("shard.read=first:99:EIO") as injector:
            with pytest.raises(ShardQuarantinedError) as excinfo:
                ds.column_chunk("a", 0, 2)
            assert excinfo.value.shard == 0
            assert excinfo.value.errno == errno.EIO
            assert "c0.npy" in str(excinfo.value.path)
            fired_after_seal = injector.snapshot()["shard.read"]["invocations"]
            # Later reads fail fast: same structured error, no retry storm.
            with pytest.raises(ShardQuarantinedError):
                ds.column_chunk("a", 0, 2)
            assert (
                injector.snapshot()["shard.read"]["invocations"]
                == fired_after_seal
            )
        assert set(ds.quarantined) == {0}

    def test_clear_quarantine_readmits_the_shard(self, shard_dir):
        ds = ShardedDataset(shard_dir)
        with inject("shard.read=first:99:EIO"):
            with pytest.raises(ShardQuarantinedError):
                ds.column_chunk("a", 0, 2)
        assert ds.clear_quarantine() == [0]
        # The fault cleared (injector gone): reads work again.
        assert ds.column_chunk("a", 0, 2) == ["a0", "a1"]
        assert ds.quarantined == {}

    def test_other_shards_keep_serving(self, shard_dir):
        ds = ShardedDataset(shard_dir)
        ds.column_chunk("a", 2, 4)  # shard 1 cached before the fault window
        with inject("shard.read=first:99:EIO"):
            with pytest.raises(ShardQuarantinedError):
                ds.column_chunk("a", 0, 2)
            assert ds.column_chunk("a", 2, 4) == ["a2", "a3"]

    def test_missing_shard_file_is_not_quarantined(self, shard_dir):
        ds = ShardedDataset(shard_dir)
        (shard_dir / "shards" / "shard-00000" / "c0.npy").unlink()
        with pytest.raises(FileNotFoundError):
            ds.column_chunk("a", 0, 2)
        assert ds.quarantined == {}
