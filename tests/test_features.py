"""Unit tests for the representation model Q (featurizers + pipeline)."""

import numpy as np
import pytest

from repro.dataset import Cell, Dataset
from repro.features import (
    CharEmbeddingFeaturizer,
    ColumnIdFeaturizer,
    ConstraintViolationFeaturizer,
    CooccurrenceFeaturizer,
    EmpiricalDistributionFeaturizer,
    FeaturePipeline,
    FormatNGramFeaturizer,
    NeighborhoodFeaturizer,
    SymbolicNGramFeaturizer,
    TupleEmbeddingFeaturizer,
    WordEmbeddingFeaturizer,
    default_pipeline,
)
from repro.features.pipeline import ALL_MODEL_NAMES


@pytest.fixture(scope="module")
def dataset():
    rows = [["60612", "Chicago", "IL"]] * 10 + [["02139", "Cambridge", "MA"]] * 10
    rows.append(["60612", "Cicago", "IL"])
    return Dataset.from_rows(["zip", "city", "state"], rows)


@pytest.fixture(scope="module")
def cells(dataset):
    return [Cell(0, "city"), Cell(20, "city"), Cell(0, "zip")]


class TestAttributeFeaturizers:
    def test_char_embedding_shape(self, dataset, cells):
        f = CharEmbeddingFeaturizer(dim=6, epochs=1, rng=0).fit(dataset)
        out = f.transform(cells, dataset)
        assert out.shape == (3, 6)
        assert f.branch == "char"

    def test_word_embedding_shape(self, dataset, cells):
        f = WordEmbeddingFeaturizer(dim=6, epochs=1, rng=0).fit(dataset)
        assert f.transform(cells, dataset).shape == (3, 6)

    def test_format_ngram_flags_typo(self, dataset):
        f = FormatNGramFeaturizer().fit(dataset)
        clean = f.transform([Cell(0, "city")], dataset)[0, 0]
        typo = f.transform([Cell(20, "city")], dataset)[0, 0]
        assert typo < clean  # log prob of rarest gram is lower for the typo

    def test_symbolic_ngram_dim(self, dataset, cells):
        f = SymbolicNGramFeaturizer().fit(dataset)
        assert f.transform(cells, dataset).shape == (3, 1)

    def test_empirical_dist_values(self, dataset):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        chicago = f.transform([Cell(0, "city")], dataset)[0, 0]
        cicago = f.transform([Cell(20, "city")], dataset)[0, 0]
        assert chicago == pytest.approx(10 / 21)
        assert cicago == pytest.approx(1 / 21)

    def test_column_id_onehot(self, dataset, cells):
        f = ColumnIdFeaturizer().fit(dataset)
        out = f.transform(cells, dataset)
        assert out.shape == (3, 3)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(3))

    def test_value_override(self, dataset):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        overridden = f.transform([Cell(0, "city")], dataset, values=["Cambridge"])
        assert overridden[0, 0] == pytest.approx(10 / 21)

    def test_override_length_mismatch(self, dataset):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        with pytest.raises(ValueError):
            f.transform([Cell(0, "city")], dataset, values=["a", "b"])

    def test_unfitted_raises(self, dataset, cells):
        with pytest.raises(RuntimeError):
            EmpiricalDistributionFeaturizer().transform(cells, dataset)


class TestTupleFeaturizers:
    def test_cooccurrence_flags_inconsistency(self, dataset):
        f = CooccurrenceFeaturizer().fit(dataset)
        clean = f.transform([Cell(0, "city")], dataset)
        # 'Chicago' always co-occurs with 60612/IL -> conditionals 1.0.
        assert clean.max() == pytest.approx(1.0)
        typo = f.transform([Cell(20, "city")], dataset)
        # 'Cicago' co-occurs with its own tuple only -> 1.0 too, but an
        # unseen value scores all-zero:
        unseen = f.transform([Cell(0, "city")], dataset, values=["Nowhere"])
        assert unseen.max() == 0.0

    def test_cooccurrence_dim(self, dataset):
        f = CooccurrenceFeaturizer().fit(dataset)
        assert f.dim == 2

    def test_tuple_embedding_shape(self, dataset, cells):
        f = TupleEmbeddingFeaturizer(dim=5, epochs=1, rng=0).fit(dataset)
        assert f.transform(cells, dataset).shape == (3, 10)
        assert f.branch == "tuple"


class TestDatasetFeaturizers:
    def test_violation_counts(self, dataset, zip_fd):
        f = ConstraintViolationFeaturizer([zip_fd]).fit(dataset)
        out = f.transform([Cell(0, "city"), Cell(20, "city")], dataset)
        # Row 0 Chicago conflicts with row 20 Cicago (same zip).
        assert out[0, 0] > 0
        assert out[1, 0] > 0
        state_cell = f.transform([Cell(0, "state")], dataset)
        assert state_cell[0, 0] == 0.0  # attribute not in constraint

    def test_violation_override_reduces_count(self, dataset, zip_fd):
        f = ConstraintViolationFeaturizer([zip_fd]).fit(dataset)
        # Repairing the typo tuple's city to Chicago removes its violations.
        fixed = f.transform([Cell(20, "city")], dataset, values=["Chicago"])
        assert fixed[0, 0] == 0.0

    def test_violation_override_creates_count(self, dataset, zip_fd):
        f = ConstraintViolationFeaturizer([zip_fd]).fit(dataset)
        # Corrupting a clean tuple's city creates violations with the other
        # 9 clean tuples of the same zip (+1 vs the typo tuple's count 9).
        broken = f.transform([Cell(0, "city")], dataset, values=["Wrong"])
        assert broken[0, 0] > 0

    def test_neighborhood_distance_range(self, dataset, cells):
        f = NeighborhoodFeaturizer(dim=6, epochs=1, rng=0).fit(dataset)
        out = f.transform(cells, dataset)
        assert out.shape == (3, 1)
        assert np.all(out >= 0.0) and np.all(out <= 2.0)


class TestPipeline:
    def test_default_pipeline_names(self, dataset, zip_fd):
        pipe = default_pipeline([zip_fd], embedding_dim=4, rng=0)
        assert set(pipe.model_names) == set(ALL_MODEL_NAMES)

    def test_without_constraints_drops_violation_model(self, dataset):
        pipe = default_pipeline(None, embedding_dim=4, rng=0)
        assert "constraint_violations" not in pipe.model_names

    def test_transform_blocks(self, dataset, zip_fd, cells):
        pipe = default_pipeline([zip_fd], embedding_dim=4, embedding_epochs=1, rng=0)
        pipe.fit(dataset)
        feats = pipe.transform(cells, dataset)
        assert feats.numeric.shape == (3, pipe.numeric_dim)
        assert set(feats.branches) == {"char", "word", "tuple"}
        assert feats.batch_size == 3

    def test_numeric_standardised_and_clipped(self, dataset, zip_fd):
        pipe = default_pipeline([zip_fd], embedding_dim=4, embedding_epochs=1, rng=0)
        pipe.fit(dataset)
        feats = pipe.transform(list(dataset.cells()), dataset)
        assert np.abs(feats.numeric).max() <= 10.0

    def test_exclusion_for_ablation(self, dataset):
        pipe = default_pipeline(None, embedding_dim=4, exclude=("char_embedding",), rng=0)
        assert "char_embedding" not in pipe.model_names

    def test_unknown_exclusion_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            default_pipeline(None, exclude=("no_such_model",))

    def test_without_method(self, dataset):
        pipe = default_pipeline(None, embedding_dim=4, rng=0)
        smaller = pipe.without("neighborhood")
        assert "neighborhood" not in smaller.model_names
        with pytest.raises(ValueError):
            pipe.without("nope")

    def test_duplicate_names_rejected(self):
        f1, f2 = EmpiricalDistributionFeaturizer(), EmpiricalDistributionFeaturizer()
        with pytest.raises(ValueError, match="duplicate"):
            FeaturePipeline([f1, f2])

    def test_unfitted_transform_raises(self, dataset, cells):
        pipe = default_pipeline(None, embedding_dim=4, rng=0)
        with pytest.raises(RuntimeError):
            pipe.transform(cells, dataset)
