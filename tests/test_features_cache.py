"""Tests for the batched featurization engine and the feature cache.

Covers the ISSUE 1 checklist: hit/miss accounting, invalidation on dataset
change, and byte-identical outputs versus the uncached path — plus the
batch-vs-single-cell equivalence that underpins the vectorised transforms.
"""

import numpy as np
import pytest

from repro.dataset import Cell, Dataset
from repro.features import (
    CellBatch,
    ColumnIdFeaturizer,
    EmpiricalDistributionFeaturizer,
    FeatureCache,
    FeaturePipeline,
    Featurizer,
    default_pipeline,
)
from repro.features.extra import TokenFrequencyFeaturizer, ValueLengthFeaturizer


@pytest.fixture(scope="module")
def dataset():
    rows = [["60612", "Chicago", "IL"]] * 10 + [["02139", "Cambridge", "MA"]] * 10
    rows.append(["60612", "Cicago", "IL"])
    return Dataset.from_rows(["zip", "city", "state"], rows)


@pytest.fixture(scope="module")
def cells(dataset):
    return [Cell(0, "city"), Cell(20, "city"), Cell(0, "zip"), Cell(5, "state")]


@pytest.fixture
def fitted_pipeline(dataset, zip_fd):
    return default_pipeline(
        [zip_fd], embedding_dim=4, embedding_epochs=1, rng=0
    ).fit(dataset)


class TestCellBatch:
    def test_resolved_uses_overrides(self, dataset, cells):
        batch = CellBatch(cells[:2], dataset, values=["A", "B"])
        assert batch.resolved == ["A", "B"]

    def test_override_length_mismatch(self, dataset, cells):
        with pytest.raises(ValueError, match="must match"):
            CellBatch(cells, dataset, values=["only-one"])

    def test_by_attr_groups_positions(self, dataset, cells):
        batch = CellBatch(cells, dataset)
        assert sorted(batch.by_attr) == ["city", "state", "zip"]
        np.testing.assert_array_equal(batch.by_attr["city"], [0, 1])
        np.testing.assert_array_equal(batch.by_attr["zip"], [2])

    def test_value_groups_deduplicate(self, dataset):
        batch = CellBatch([Cell(0, "city"), Cell(1, "city"), Cell(20, "city")], dataset)
        groups = batch.value_groups["city"]
        np.testing.assert_array_equal(groups["Chicago"], [0, 1])
        np.testing.assert_array_equal(groups["Cicago"], [2])

    def test_overridden_mask(self, dataset):
        batch = CellBatch(
            [Cell(0, "city"), Cell(1, "city")], dataset, values=["Chicago", "Nope"]
        )
        np.testing.assert_array_equal(batch.overridden, [False, True])

    def test_digest_sensitive_to_values(self, dataset, cells):
        plain = CellBatch(cells, dataset)
        overridden = CellBatch(cells, dataset, values=["a", "b", "c", "d"])
        assert plain.digest != overridden.digest
        assert plain.digest == CellBatch(cells, dataset).digest


class TestBatchEquivalence:
    """transform_batch must equal per-cell transform for every model."""

    def test_batched_equals_per_cell(self, dataset, fitted_pipeline, cells):
        for featurizer in fitted_pipeline.featurizers:
            batched = featurizer.transform(cells, dataset)
            singles = np.vstack(
                [featurizer.transform([c], dataset) for c in cells]
            )
            np.testing.assert_array_equal(batched, singles, err_msg=featurizer.name)

    def test_batched_equals_per_cell_with_overrides(self, dataset, fitted_pipeline):
        probe = [Cell(0, "city"), Cell(20, "city"), Cell(3, "zip")]
        values = ["Cambridge", "Chicago", "99999"]
        for featurizer in fitted_pipeline.featurizers:
            batched = featurizer.transform(probe, dataset, values=values)
            singles = np.vstack(
                [
                    featurizer.transform([c], dataset, values=[v])
                    for c, v in zip(probe, values)
                ]
            )
            np.testing.assert_array_equal(batched, singles, err_msg=featurizer.name)

    def test_extra_featurizers_batched(self, dataset, cells):
        for featurizer in (ValueLengthFeaturizer(), TokenFrequencyFeaturizer()):
            featurizer.fit(dataset)
            batched = featurizer.transform(cells, dataset)
            singles = np.vstack([featurizer.transform([c], dataset) for c in cells])
            np.testing.assert_array_equal(batched, singles)


class TestFeatureCache:
    def test_hit_miss_accounting(self, dataset, cells):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        cache = FeatureCache()
        batch = CellBatch(cells, dataset)
        cache.get_or_compute(f, batch)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.get_or_compute(f, batch)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        # A different batch of the same cells still hits: same digest.
        cache.get_or_compute(f, CellBatch(cells, dataset))
        assert cache.stats.hits == 2
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_value_override_keys_separately(self, dataset):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        cache = FeatureCache()
        probe = [Cell(0, "city")]
        a = cache.get_or_compute(f, CellBatch(probe, dataset))
        b = cache.get_or_compute(f, CellBatch(probe, dataset, values=["Cicago"]))
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert a[0, 0] == pytest.approx(10 / 21)
        assert b[0, 0] == pytest.approx(1 / 21)

    def test_cached_blocks_byte_identical(self, dataset, fitted_pipeline, cells):
        cache = FeatureCache()
        batch = CellBatch(cells, dataset)
        for featurizer in fitted_pipeline.featurizers:
            uncached = featurizer.transform_batch(batch)
            cached_cold = cache.get_or_compute(featurizer, batch)
            cached_warm = cache.get_or_compute(featurizer, batch)
            assert uncached.tobytes() == cached_cold.tobytes() == cached_warm.tobytes()

    def test_invalidation_on_dataset_change(self, cells):
        rows = [["60612", "Chicago", "IL"]] * 5
        mutable = Dataset.from_rows(["zip", "city", "state"], rows)
        f = EmpiricalDistributionFeaturizer().fit(mutable)
        cache = FeatureCache()
        probe = [Cell(0, "city")]
        cache.get_or_compute(f, CellBatch(probe, mutable))
        # Mutating the dataset changes its fingerprint: the next lookup is a
        # miss — the stale block is never served again.
        mutable.set_value(Cell(1, "city"), "Springfield")
        cache.get_or_compute(f, CellBatch(probe, mutable))
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        # After refitting on the mutated data (fresh token), the recomputed
        # block reflects the new contents.
        f.fit(mutable)
        f.reset_cache_token()
        after = cache.get_or_compute(f, CellBatch(probe, mutable))
        assert cache.stats.misses == 3
        assert after[0, 0] == pytest.approx(4 / 5)

    def test_explicit_scope_invalidation(self, dataset, cells):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        cache = FeatureCache()
        batch = CellBatch(cells, dataset)
        cache.get_or_compute(f, batch)
        assert len(cache) == 1
        # The block is keyed under the featurizer's scoped fingerprint (the
        # batch's column fingerprints for this attribute-scoped model).
        dropped = cache.invalidate_scope(f.scoped_fingerprint(batch))
        assert dropped == 1 and len(cache) == 0
        assert cache.stats.invalidations == 1
        # And the next lookup recomputes.
        cache.get_or_compute(f, CellBatch(cells, dataset))
        assert cache.stats.misses == 2

    def test_refit_invalidates_via_token(self, dataset, cells):
        pipeline = FeaturePipeline([ColumnIdFeaturizer()], cache=FeatureCache())
        pipeline.fit(dataset)
        batch = CellBatch(cells, dataset)
        pipeline.transform_batch(batch)
        token_before = pipeline.featurizers[0].cache_token
        pipeline.fit(dataset)
        assert pipeline.featurizers[0].cache_token != token_before
        pipeline.transform_batch(batch)
        # Both passes were misses: the refit issued a fresh token.
        assert pipeline.cache.stats.hits == 0

    def test_lru_eviction(self, dataset, cells):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        cache = FeatureCache(max_entries=2)
        batches = [CellBatch([c], dataset) for c in cells[:3]]
        for batch in batches:
            cache.get_or_compute(f, batch)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (cells[0]) was evicted; re-fetching it misses.
        cache.get_or_compute(f, batches[0])
        assert cache.stats.misses == 4

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FeatureCache(max_entries=0)

    def test_rejects_nonpositive_max_bytes(self):
        with pytest.raises(ValueError):
            FeatureCache(max_bytes=0)

    def test_byte_bound_evicts_lru(self, dataset, cells):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        block_bytes = f.transform_batch(CellBatch([cells[0]], dataset)).nbytes
        # Room for exactly two single-cell blocks.
        cache = FeatureCache(max_entries=100, max_bytes=2 * block_bytes)
        batches = [CellBatch([c], dataset) for c in cells[:3]]
        for batch in batches:
            cache.get_or_compute(f, batch)
        assert len(cache) == 2
        assert cache.nbytes <= 2 * block_bytes
        assert cache.stats.evictions == 1
        assert cache.stats.byte_evictions == 1
        # The oldest entry was the one dropped; re-fetching it misses.
        cache.get_or_compute(f, batches[0])
        assert cache.stats.misses == 4

    def test_oversize_block_returned_but_not_cached(self, dataset, cells):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        cache = FeatureCache(max_bytes=1)
        batch = CellBatch([cells[0]], dataset)
        block = cache.get_or_compute(f, batch)
        assert block.shape[0] == 1
        assert len(cache) == 0
        assert cache.nbytes == 0
        assert cache.stats.oversize_rejections == 1
        assert "oversize" in cache.stats.summary()

    def test_nbytes_tracks_invalidation_and_clear(self, dataset, cells):
        f = EmpiricalDistributionFeaturizer().fit(dataset)
        cache = FeatureCache(max_bytes=10**9)
        batch = CellBatch([cells[0]], dataset)
        cache.get_or_compute(f, batch)
        assert cache.nbytes > 0
        cache.invalidate_scope(f.scoped_fingerprint(batch))
        assert cache.nbytes == 0
        cache.get_or_compute(f, batch)
        cache.clear()
        assert cache.nbytes == 0

    def test_stats_dict_includes_byte_counters(self):
        cache = FeatureCache(max_bytes=1024)
        stats = cache.stats.as_dict()
        assert stats["byte_evictions"] == 0
        assert stats["oversize_rejections"] == 0


class TestPipelineCaching:
    def test_pipeline_transform_hits_on_repeat(self, dataset, fitted_pipeline, cells):
        cache = FeatureCache()
        fitted_pipeline.cache = cache
        first = fitted_pipeline.transform(cells, dataset)
        assert cache.stats.hits == 0
        lookups_per_pass = cache.stats.misses
        assert lookups_per_pass == len(fitted_pipeline.featurizers)
        second = fitted_pipeline.transform(cells, dataset)
        assert cache.stats.hits == lookups_per_pass
        np.testing.assert_array_equal(first.numeric, second.numeric)
        for branch in first.branches:
            np.testing.assert_array_equal(first.branches[branch], second.branches[branch])

    def test_cached_and_uncached_pipelines_agree(self, dataset, fitted_pipeline, cells):
        fitted_pipeline.cache = None
        uncached = fitted_pipeline.transform(cells, dataset)
        fitted_pipeline.cache = FeatureCache()
        fitted_pipeline.transform(cells, dataset)  # cold fill
        warm = fitted_pipeline.transform(cells, dataset)
        assert uncached.numeric.tobytes() == warm.numeric.tobytes()
        for branch in uncached.branches:
            assert uncached.branches[branch].tobytes() == warm.branches[branch].tobytes()


class TestCacheConcurrency:
    def test_parallel_lookups_are_consistent(self, dataset, fitted_pipeline, cells):
        from concurrent.futures import ThreadPoolExecutor

        cache = FeatureCache()
        fitted_pipeline.cache = cache
        batches = [CellBatch(cells, dataset) for _ in range(8)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(fitted_pipeline.transform_batch, batches))
        reference = results[0]
        for other in results[1:]:
            np.testing.assert_array_equal(reference.numeric, other.numeric)
        # One block per featurizer survives; concurrent misses may compute
        # the same block more than once but never corrupt the cache.
        assert len(cache) == len(fitted_pipeline.featurizers)
        assert cache.stats.lookups == 8 * len(fitted_pipeline.featurizers)


class TestLegacyFeaturizerCompat:
    def test_transform_only_subclass_still_works(self, dataset, cells):
        class Legacy(Featurizer):
            name = "legacy"

            def fit(self, ds):
                return self

            # Pre-batching two-argument signature (no ``values``).
            def transform(self, cells, dataset):
                return np.ones((len(cells), 1))

            @property
            def dim(self):
                return 1

        legacy = Legacy().fit(dataset)
        out = legacy.transform_batch(CellBatch(cells, dataset))
        assert out.shape == (len(cells), 1)

    def test_transform_only_subclass_with_values(self, dataset, cells):
        class Legacy(Featurizer):
            name = "legacy_values"

            def fit(self, ds):
                return self

            def transform(self, cells, dataset, values=None):
                block = np.ones((len(cells), 1))
                return block * 2 if values is not None else block

        legacy = Legacy().fit(dataset)
        out = legacy.transform_batch(
            CellBatch(cells, dataset, values=["x"] * len(cells))
        )
        np.testing.assert_array_equal(out, np.full((len(cells), 1), 2.0))

    def test_unimplemented_subclass_raises(self, dataset, cells):
        class Empty(Featurizer):
            name = "empty"

        with pytest.raises(NotImplementedError):
            Empty().transform_batch(CellBatch(cells, dataset))


class TestDatasetFingerprint:
    def test_stable_until_mutation(self, dataset):
        assert dataset.fingerprint() == dataset.fingerprint()

    def test_copy_shares_fingerprint(self, dataset):
        assert dataset.copy().fingerprint() == dataset.fingerprint()

    def test_mutation_changes_fingerprint(self):
        ds = Dataset.from_rows(["a"], [["x"], ["y"]])
        before = ds.fingerprint()
        ds.set_value(Cell(0, "a"), "z")
        assert ds.fingerprint() != before
