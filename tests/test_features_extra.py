"""Tests for the optional extra representation models."""

import numpy as np
import pytest

from repro.dataset import Cell, Dataset
from repro.features.extra import TokenFrequencyFeaturizer, ValueLengthFeaturizer
from repro.features.pipeline import FeaturePipeline


@pytest.fixture(scope="module")
def dataset():
    rows = [["60612", "Chicago"]] * 15 + [["02139", "Cambridge"]] * 15
    rows.append(["6061200", "Chicago"])  # length outlier in zip
    rows.append(["60612", "Zorgon"])  # rare token in city
    return Dataset.from_rows(["zip", "city"], rows)


class TestValueLength:
    def test_typical_length_near_zero(self, dataset):
        f = ValueLengthFeaturizer().fit(dataset)
        z = f.transform([Cell(0, "zip")], dataset)[0, 0]
        assert abs(z) < 1.0

    def test_outlier_length_flagged(self, dataset):
        f = ValueLengthFeaturizer().fit(dataset)
        z = f.transform([Cell(30, "zip")], dataset)[0, 0]
        assert z > 2.0

    def test_value_override(self, dataset):
        f = ValueLengthFeaturizer().fit(dataset)
        z = f.transform([Cell(0, "zip")], dataset, values=["123456789012"])[0, 0]
        assert z > 2.0

    def test_constant_column_safe(self):
        d = Dataset.from_rows(["a"], [["xx"]] * 5)
        f = ValueLengthFeaturizer().fit(d)
        assert f.transform([Cell(0, "a")], d)[0, 0] == 0.0

    def test_unfitted_raises(self, dataset):
        with pytest.raises(RuntimeError):
            ValueLengthFeaturizer().transform([Cell(0, "zip")], dataset)


class TestTokenFrequency:
    def test_common_token_higher_than_rare(self, dataset):
        f = TokenFrequencyFeaturizer().fit(dataset)
        common = f.transform([Cell(0, "city")], dataset)[0, 0]
        rare = f.transform([Cell(31, "city")], dataset)[0, 0]
        assert common > rare

    def test_unseen_token_lowest(self, dataset):
        f = TokenFrequencyFeaturizer().fit(dataset)
        seen = f.transform([Cell(31, "city")], dataset)[0, 0]
        unseen = f.transform([Cell(0, "city")], dataset, values=["Xyzzy"])[0, 0]
        assert unseen < seen

    def test_empty_value_handled(self, dataset):
        f = TokenFrequencyFeaturizer().fit(dataset)
        out = f.transform([Cell(0, "city")], dataset, values=[""])
        assert np.isfinite(out[0, 0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            TokenFrequencyFeaturizer(alpha=0.0)


class TestPipelineIntegration:
    def test_extra_models_compose_in_pipeline(self, dataset):
        pipeline = FeaturePipeline(
            [ValueLengthFeaturizer(), TokenFrequencyFeaturizer()]
        ).fit(dataset)
        feats = pipeline.transform([Cell(0, "zip"), Cell(30, "zip")], dataset)
        assert feats.numeric.shape == (2, 2)
        assert not feats.branches

    def test_detector_accepts_custom_pipeline_models(self, dataset):
        """Extra featurizers ride along via a manually built pipeline."""
        from repro.features import default_pipeline

        base = default_pipeline(None, embedding_dim=4, embedding_epochs=1, rng=0)
        extended = FeaturePipeline(base.featurizers + [ValueLengthFeaturizer()])
        extended.fit(dataset)
        assert "value_length" in extended.model_names
        feats = extended.transform([Cell(0, "zip")], dataset)
        assert feats.numeric.shape[1] == extended.numeric_dim
