"""Golden-metrics regression suite.

Each golden scenario pins the median P/R/F1 of one (dataset, method) pair
on a small, fully seeded sweep scenario.  The fixtures live in
``tests/golden/golden_metrics.json``; a future PR that silently degrades
reproduction quality (a featurizer regression, an RNG plumbing change, a
split-protocol drift) fails here instead of shipping.

Tolerances are per-method: rule-based detectors (CV, OD) are exact set
computations and get a near-zero tolerance; learned methods (LR, the
HoloDetect model) get a small allowance for cross-BLAS floating-point
differences — still far tighter than any real regression.

To regenerate after an *intentional* metrics change::

    PYTHONPATH=src python -m pytest tests/test_golden_metrics.py --update-golden

and commit the diff (the diff itself documents the metric shift for review).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.evaluation.matrix import ScenarioSpec, run_scenario

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_metrics.json"
GOLDEN_SCHEMA = "repro.golden/v1"

#: Shared knobs: small but non-trivial, seeded, quick enough for tier-1.
_COMMON = dict(rows=120, label_budget=0.1, trials=3, sampling_fraction=0.2, seed=7)

#: Near-zero for exact rule-based methods; small for learned methods.
EXACT = 1e-9
LEARNED = 0.02
MODEL = 0.05

GOLDEN_SCENARIOS: list[tuple[str, ScenarioSpec, float]] = [
    ("hospital/cv", ScenarioSpec(dataset="hospital", error_profile="native", method="cv", **_COMMON), EXACT),
    ("hospital/od", ScenarioSpec(dataset="hospital", error_profile="native", method="od", **_COMMON), EXACT),
    ("hospital/lr", ScenarioSpec(dataset="hospital", error_profile="native", method="lr", **_COMMON), LEARNED),
    ("food/cv", ScenarioSpec(dataset="food", error_profile="native", method="cv", **_COMMON), EXACT),
    ("food/od", ScenarioSpec(dataset="food", error_profile="native", method="od", **_COMMON), EXACT),
    ("food/lr", ScenarioSpec(dataset="food", error_profile="native", method="lr", **_COMMON), LEARNED),
    (
        "hospital/holodetect",
        ScenarioSpec(
            dataset="hospital",
            error_profile="native",
            method="holodetect",
            method_params={"epochs": 3, "embedding_dim": 8, "min_training_steps": 100},
            **{**_COMMON, "trials": 1},
        ),
        MODEL,
    ),
]


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        return {"schema": GOLDEN_SCHEMA, "scenarios": {}}
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _save_golden(payload: dict) -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.mark.parametrize(
    "key,spec,atol", GOLDEN_SCENARIOS, ids=[k for k, _, _ in GOLDEN_SCENARIOS]
)
def test_golden_metrics(key: str, spec: ScenarioSpec, atol: float, update_golden: bool):
    record = run_scenario(spec)
    metrics = record["metrics"]

    if update_golden:
        payload = _load_golden()
        payload["schema"] = GOLDEN_SCHEMA
        payload.setdefault("scenarios", {})[key] = {
            "fingerprint": spec.fingerprint(),
            "spec": spec.to_dict(),
            "atol": atol,
            "metrics": metrics,
        }
        _save_golden(payload)
        return

    golden = _load_golden()["scenarios"].get(key)
    assert golden is not None, (
        f"no golden fixture for {key!r}; run with --update-golden to record one"
    )
    assert golden["fingerprint"] == spec.fingerprint(), (
        f"golden fixture for {key!r} was recorded for a different scenario spec; "
        "rerun with --update-golden and review the metric diff"
    )
    for name in ("precision", "recall", "f1"):
        got, want = metrics[name], golden["metrics"][name]
        assert got == pytest.approx(want, abs=golden["atol"]), (
            f"{key}: {name} drifted from golden {want:.6f} to {got:.6f} "
            f"(tolerance {golden['atol']}) — reproduction quality regressed, "
            "or rerun with --update-golden if the change is intentional"
        )


def test_golden_file_matches_scenario_list(update_golden: bool):
    """The fixture file covers exactly the declared scenarios (no orphans).

    In ``--update-golden`` mode this prunes fixtures whose scenario was
    removed from :data:`GOLDEN_SCENARIOS` (it runs after the parametrized
    tests have upserted their entries), so one update run always converges
    the file.
    """
    golden = _load_golden()
    expected = {k for k, _, _ in GOLDEN_SCENARIOS}
    if update_golden:
        stale = set(golden.get("scenarios", {})) - expected
        for key in stale:
            del golden["scenarios"][key]
        if stale:
            _save_golden(golden)
    assert golden.get("schema") == GOLDEN_SCHEMA
    assert set(golden.get("scenarios", {})) == expected
