"""Tests for the versioned-dataset + column-scoped incremental engine (ISSUE 2).

Covers the satellite checklist: delta correctness for ``apply_edits`` /
``append_rows``, scoped-invalidation invariants (an edit in column A leaves
column-B attribute blocks cached, asserted via ``CacheStats``),
``FeaturePipeline.refresh`` refitting only dirty models, and
``DetectionSession.apply`` matching a full ``predict()`` bit-for-bit on the
edited dataset.
"""

import numpy as np
import pytest

from repro.core import DetectionSession, DetectorConfig, HoloDetect
from repro.dataset import Cell, Dataset, DatasetDelta
from repro.features import (
    CellBatch,
    ColumnIdFeaturizer,
    CooccurrenceFeaturizer,
    EmpiricalDistributionFeaturizer,
    FeatureCache,
    FeatureContext,
    FeaturePipeline,
    FormatNGramFeaturizer,
)


@pytest.fixture
def mutable():
    rows = [["60612", "Chicago", "IL"]] * 4 + [["02139", "Cambridge", "MA"]] * 4
    return Dataset.from_rows(["zip", "city", "state"], rows)


# --------------------------------------------------------------------- #
# Dataset versioning + deltas
# --------------------------------------------------------------------- #


class TestColumnFingerprints:
    def test_edit_changes_only_its_column(self, mutable):
        before = {a: mutable.column_fingerprint(a) for a in mutable.attributes}
        relation_before = mutable.fingerprint()
        mutable.set_value(Cell(0, "city"), "Springfield")
        assert mutable.column_fingerprint("city") != before["city"]
        assert mutable.column_fingerprint("zip") == before["zip"]
        assert mutable.column_fingerprint("state") == before["state"]
        assert mutable.fingerprint() != relation_before

    def test_noop_set_value_changes_nothing(self, mutable):
        before = mutable.fingerprint()
        version = mutable.version
        mutable.set_value(Cell(0, "city"), "Chicago")
        assert mutable.fingerprint() == before
        assert mutable.version == version

    def test_version_bumps_on_effective_mutation(self, mutable):
        v0 = mutable.version
        mutable.set_value(Cell(0, "city"), "X")
        assert mutable.version == v0 + 1
        mutable.apply_edits({Cell(1, "zip"): "99999"})
        assert mutable.version == v0 + 2

    def test_copy_carries_fingerprints_and_stays_independent(self, mutable):
        fp = mutable.fingerprint()
        clone = mutable.copy()
        assert clone.fingerprint() == fp
        clone.set_value(Cell(0, "city"), "X")
        assert clone.fingerprint() != fp
        assert mutable.fingerprint() == fp

    def test_rows_fingerprint_scoped_to_rows(self, mutable):
        probe = mutable.rows_fingerprint([0, 1])
        mutable.set_value(Cell(5, "city"), "Boston")
        assert mutable.rows_fingerprint([0, 1]) == probe
        mutable.set_value(Cell(1, "city"), "Boston")
        assert mutable.rows_fingerprint([0, 1]) != probe


class TestApplyEdits:
    def test_delta_reports_touched_rows_and_columns(self, mutable):
        delta = mutable.apply_edits(
            {Cell(3, "city"): "Evanston", Cell(1, "zip"): "99999"}
        )
        assert set(delta.cells) == {Cell(3, "city"), Cell(1, "zip")}
        assert delta.columns == ("zip", "city")  # schema order
        assert delta.rows == (1, 3)  # ascending
        assert delta.appended == ()
        assert not delta.is_empty
        assert mutable.value(Cell(3, "city")) == "Evanston"

    def test_noop_edits_excluded_from_delta(self, mutable):
        delta = mutable.apply_edits(
            {Cell(0, "city"): "Chicago", Cell(1, "city"): "Berwyn"}
        )
        assert delta.cells == (Cell(1, "city"),)
        assert delta.columns == ("city",)

    def test_empty_and_all_noop_edits_give_empty_delta(self, mutable):
        version = mutable.version
        assert mutable.apply_edits({}).is_empty
        assert mutable.apply_edits({Cell(0, "zip"): "60612"}).is_empty
        assert mutable.version == version

    def test_pairs_iterable_accepted_last_wins(self, mutable):
        delta = mutable.apply_edits(
            [(Cell(0, "city"), "A"), (Cell(0, "city"), "B")]
        )
        assert mutable.value(Cell(0, "city")) == "B"
        assert delta.cells == (Cell(0, "city"),)

    def test_rejects_unknown_attribute_and_bad_row(self, mutable):
        with pytest.raises(KeyError):
            mutable.apply_edits({Cell(0, "nope"): "x"})
        with pytest.raises(IndexError):
            mutable.apply_edits({Cell(99, "city"): "x"})

    def test_invalid_batch_is_atomic(self, mutable):
        """An invalid edit anywhere in the batch must leave nothing applied."""
        fingerprint = mutable.fingerprint()
        version = mutable.version
        with pytest.raises(IndexError):
            mutable.apply_edits([(Cell(0, "city"), "Mutated"), (Cell(99, "city"), "x")])
        assert mutable.value(Cell(0, "city")) == "Chicago"
        assert mutable.fingerprint() == fingerprint
        assert mutable.version == version

    def test_values_coerced_to_str(self, mutable):
        mutable.apply_edits({Cell(0, "zip"): 12345})
        assert mutable.value(Cell(0, "zip")) == "12345"


class TestAppendRows:
    def test_append_delta_and_contents(self, mutable):
        delta = mutable.append_rows([["11111", "Naperville", "IL"]])
        assert delta.appended == (8,)
        assert delta.rows == (8,)
        assert delta.columns == mutable.attributes
        assert delta.cells == ()
        assert mutable.num_rows == 9
        assert mutable.row_values(8) == ["11111", "Naperville", "IL"]

    def test_append_changes_every_column_fingerprint(self, mutable):
        before = {a: mutable.column_fingerprint(a) for a in mutable.attributes}
        mutable.append_rows([["1", "2", "3"]])
        for attr in mutable.attributes:
            assert mutable.column_fingerprint(attr) != before[attr]

    def test_empty_append_is_noop(self, mutable):
        version = mutable.version
        assert mutable.append_rows([]).is_empty
        assert mutable.version == version

    def test_append_rejects_wrong_arity(self, mutable):
        with pytest.raises(ValueError, match="arity"):
            mutable.append_rows([["just-one"]])


class TestDeltaMerge:
    def test_merge_unions_everything(self):
        a = DatasetDelta(cells=(Cell(0, "x"),), columns=("x",), rows=(0,))
        b = DatasetDelta(
            cells=(Cell(2, "y"),), columns=("y", "x"), rows=(2, 5), appended=(5,)
        )
        merged = a.merge(b)
        assert merged.cells == (Cell(0, "x"), Cell(2, "y"))
        assert merged.columns == ("x", "y")
        assert merged.rows == (0, 2, 5)
        assert merged.appended == (5,)


# --------------------------------------------------------------------- #
# Scoped cache invalidation
# --------------------------------------------------------------------- #


class TestScopedInvalidation:
    def test_edit_in_column_a_keeps_column_b_attribute_blocks(self, mutable):
        featurizer = EmpiricalDistributionFeaturizer().fit(mutable)
        cache = FeatureCache()
        batch_a = [Cell(r, "zip") for r in range(4)]
        batch_b = [Cell(r, "city") for r in range(4)]
        cache.get_or_compute(featurizer, CellBatch(batch_a, mutable))
        cache.get_or_compute(featurizer, CellBatch(batch_b, mutable))
        assert cache.stats.misses == 2
        mutable.set_value(Cell(0, "zip"), "00000")
        # Column B (city) block survives the column-A edit: a cache hit.
        cache.get_or_compute(featurizer, CellBatch(batch_b, mutable))
        assert cache.stats.hits == 1
        # Column A block was invalidated by its own column's fingerprint.
        cache.get_or_compute(featurizer, CellBatch(batch_a, mutable))
        assert cache.stats.misses == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 4)

    def test_tuple_scope_blocks_survive_edits_to_other_rows(self, mutable):
        featurizer = CooccurrenceFeaturizer().fit(mutable)
        cache = FeatureCache()
        rows_01 = [Cell(0, "city"), Cell(1, "city")]
        rows_67 = [Cell(6, "city"), Cell(7, "city")]
        cache.get_or_compute(featurizer, CellBatch(rows_01, mutable))
        cache.get_or_compute(featurizer, CellBatch(rows_67, mutable))
        # Edit row 6 (any column): rows 0-1 block must still hit...
        mutable.set_value(Cell(6, "zip"), "00000")
        cache.get_or_compute(featurizer, CellBatch(rows_01, mutable))
        assert cache.stats.hits == 1
        # ...while the block containing row 6 recomputes.
        cache.get_or_compute(featurizer, CellBatch(rows_67, mutable))
        assert cache.stats.misses == 3

    def test_scoped_fingerprint_selection(self, mutable):
        batch = CellBatch([Cell(0, "city")], mutable)
        attribute_scoped = EmpiricalDistributionFeaturizer().fit(mutable)
        tuple_scoped = CooccurrenceFeaturizer().fit(mutable)
        assert attribute_scoped.scoped_fingerprint(batch) == batch.columns_fingerprint
        assert tuple_scoped.scoped_fingerprint(batch) == batch.rows_fingerprint
        assert batch.columns_fingerprint != batch.rows_fingerprint

    def test_default_scope_is_conservative_dataset(self, mutable):
        from repro.features import Featurizer

        class Custom(Featurizer):
            name = "custom"

        batch = CellBatch([Cell(0, "city")], mutable)
        assert Custom.scope is FeatureContext.DATASET
        assert Custom().scoped_fingerprint(batch) == mutable.fingerprint()


# --------------------------------------------------------------------- #
# Pipeline refresh
# --------------------------------------------------------------------- #


class TestPipelineRefresh:
    def test_refreshes_only_dirty_columns(self, mutable):
        pipeline = FeaturePipeline(
            [FormatNGramFeaturizer(), ColumnIdFeaturizer(), CooccurrenceFeaturizer()]
        ).fit(mutable)
        ngram = pipeline.featurizers[0]
        untouched_model = ngram._models["state"]
        touched_model = ngram._models["city"]
        cooccurrence_token = pipeline.featurizers[2].cache_token
        delta = mutable.apply_edits({Cell(0, "city"): "Berwyn"})
        refitted = pipeline.refresh(mutable, delta)
        # Per-column model: only the touched column was refitted.
        assert "format_3gram" in refitted
        assert ngram._models["state"] is untouched_model
        assert ngram._models["city"] is not touched_model
        # Schema-only model: never refitted.
        assert "column_id" not in refitted
        # Relation-wide model: fully refitted, with a fresh cache token.
        assert "cooccurrence" in refitted
        assert pipeline.featurizers[2].cache_token != cooccurrence_token

    def test_refreshed_statistics_reflect_the_edit(self, mutable):
        pipeline = FeaturePipeline([EmpiricalDistributionFeaturizer()]).fit(mutable)
        delta = mutable.apply_edits({Cell(0, "city"): "Berwyn"})
        pipeline.refresh(mutable, delta)
        counts = pipeline.featurizers[0]._counts["city"]
        assert counts == {"Chicago": 3, "Berwyn": 1, "Cambridge": 4}

    def test_refresh_keeps_standardisation_frozen(self, mutable):
        pipeline = FeaturePipeline([EmpiricalDistributionFeaturizer()]).fit(mutable)
        mean, std = pipeline._numeric_mean.copy(), pipeline._numeric_std.copy()
        delta = mutable.apply_edits({Cell(0, "city"): "Berwyn"})
        assert pipeline.refresh(mutable, delta) == ["empirical_dist"]
        np.testing.assert_array_equal(pipeline._numeric_mean, mean)
        np.testing.assert_array_equal(pipeline._numeric_std, std)

    def test_empty_delta_refits_nothing(self, mutable):
        pipeline = FeaturePipeline([FormatNGramFeaturizer()]).fit(mutable)
        assert pipeline.refresh(mutable, DatasetDelta()) == []

    def test_refresh_before_fit_raises(self, mutable):
        pipeline = FeaturePipeline([FormatNGramFeaturizer()])
        with pytest.raises(RuntimeError):
            pipeline.refresh(mutable, DatasetDelta())


# --------------------------------------------------------------------- #
# DetectionSession ≡ full predict
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fitted_detector():
    from repro.data import load_dataset
    from repro.evaluation import make_split

    bundle = load_dataset("hospital", num_rows=80, seed=1)
    split = make_split(bundle, 0.10, rng=0)
    config = DetectorConfig(
        epochs=5, embedding_dim=4, min_training_steps=100, seed=0
    )
    detector = HoloDetect(config)
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    return bundle, detector


def tuple_edits(dataset, rows, n_attrs=5, suffix="x"):
    return {
        Cell(row, attr): dataset.value(Cell(row, attr)) + suffix
        for row in rows
        for attr in dataset.attributes[:n_attrs]
    }


class TestDetectionSession:
    def test_apply_matches_full_predict_bit_for_bit(self, fitted_detector):
        bundle, detector = fitted_detector
        dataset = bundle.dirty
        cells = [c for c in dataset.cells() if c not in detector._train_cells]
        session = DetectionSession(detector, cells)
        patched = session.apply(tuple_edits(dataset, rows=(3, 17, 41)))
        baseline = detector.predict(cells)
        assert patched.cells == baseline.cells
        assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()
        # Far fewer cells were re-scored than exist.
        assert 0 < session.rescored_cells < len(cells) / 5

    def test_second_round_of_edits_also_matches(self, fitted_detector):
        bundle, detector = fitted_detector
        dataset = bundle.dirty
        cells = [c for c in dataset.cells() if c not in detector._train_cells]
        session = DetectionSession(detector, cells)
        session.apply(tuple_edits(dataset, rows=(5,), suffix="y"))
        patched = session.apply(tuple_edits(dataset, rows=(9, 30), suffix="z"))
        baseline = detector.predict(cells)
        assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()

    def test_append_scores_new_rows_and_matches(self, fitted_detector):
        bundle, detector = fitted_detector
        dataset = bundle.dirty
        cells = [c for c in dataset.cells() if c not in detector._train_cells]
        session = DetectionSession(detector, cells)
        patched = session.append([dataset.row_values(0), dataset.row_values(1)])
        assert len(patched.cells) == len(cells) + 2 * len(dataset.attributes)
        baseline = detector.predict(list(patched.cells))
        assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()

    def test_noop_edit_rescores_nothing(self, fitted_detector):
        bundle, detector = fitted_detector
        dataset = bundle.dirty
        session = DetectionSession(detector)
        cell = session.predictions.cells[0]
        before = session.predictions.probabilities.copy()
        session.apply({cell: dataset.value(cell)})
        assert session.rescored_cells == 0
        assert np.array_equal(session.predictions.probabilities, before)

    def test_refresh_refits_and_still_matches_full_predict(self, fitted_detector):
        bundle, detector = fitted_detector
        dataset = bundle.dirty
        cells = [c for c in dataset.cells() if c not in detector._train_cells]
        session = DetectionSession(detector, cells)
        patched = session.apply(
            tuple_edits(dataset, rows=(2,), suffix="q"), refresh=True
        )
        # The refit pipeline is the detector's pipeline — a fresh full
        # prediction uses the refreshed models and must agree exactly.
        baseline = detector.predict(cells)
        assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()

    def test_refresh_matches_full_predict_attribute_only_pipeline(self):
        """Regression: with only attribute-context models, refresh must not
        shift global statistics (standardisation) out from under the cells
        it does not re-score."""
        from repro.data import load_dataset
        from repro.evaluation import make_split

        bundle = load_dataset("hospital", num_rows=60, seed=2)
        split = make_split(bundle, 0.10, rng=0)
        config = DetectorConfig(
            epochs=3,
            embedding_dim=4,
            min_training_steps=50,
            seed=0,
            exclude_models=(
                "cooccurrence",
                "tuple_embedding",
                "neighborhood",
                "constraint_violations",
            ),
        )
        detector = HoloDetect(config).fit(
            bundle.dirty, split.training, bundle.constraints
        )
        dataset = bundle.dirty
        cells = [c for c in dataset.cells() if c not in detector._train_cells]
        session = DetectionSession(detector, cells)
        patched = session.apply(tuple_edits(dataset, rows=(1,)), refresh=True)
        baseline = detector.predict(cells)
        assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()
        # Attribute-only pipeline: only the edited columns were re-scored.
        assert session.rescored_cells < len(cells)

    def test_session_accepts_existing_predictions(self, fitted_detector):
        bundle, detector = fitted_detector
        dataset = bundle.dirty
        cells = [c for c in dataset.cells() if c not in detector._train_cells]
        baseline = detector.predict(cells)
        session = DetectionSession(detector, predictions=baseline)
        assert session.predictions is baseline
        patched = session.apply(tuple_edits(dataset, rows=(23,), suffix="v"))
        full = detector.predict(cells)
        assert patched.probabilities.tobytes() == full.probabilities.tobytes()

    def test_unfitted_detector_rejected(self):
        with pytest.raises(RuntimeError):
            DetectionSession(HoloDetect())

    def test_predictions_index_is_constant_time_lookup(self, fitted_detector):
        _, detector = fitted_detector
        predictions = detector.predict()
        cell = predictions.cells[-1]
        assert predictions.index_of(cell) == len(predictions.cells) - 1
        assert predictions.probability(cell) == pytest.approx(
            float(predictions.probabilities[-1])
        )
        with pytest.raises(KeyError):
            predictions.index_of(Cell(10**6, "nope"))


class TestSessionPersistenceRoundTrip:
    def test_loaded_detector_session_matches_original(self, fitted_detector, tmp_path):
        from repro.persistence import load_detector, save_detector

        bundle, detector = fitted_detector
        dataset = bundle.dirty.copy()
        save_detector(detector, tmp_path / "model")
        loaded = load_detector(tmp_path / "model", dataset)
        cells = [c for c in dataset.cells() if c not in loaded._train_cells]

        session = DetectionSession(loaded, cells)
        edits = tuple_edits(dataset, rows=(7, 19), suffix="w")
        patched = session.apply(edits)
        baseline = loaded.predict(cells)
        assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()
        assert session.rescored_cells > 0
