"""Unit tests for the scenario matrix, scoped seeds, and sweep execution."""

from __future__ import annotations

import json
import threading

import pytest

from repro.evaluation.matrix import (
    MatrixSpecError,
    ScenarioMatrix,
    ScenarioSpec,
    clamp_workers,
    run_matrix,
    run_scenario,
)
from repro.evaluation.store import ResultStore

SMALL_MATRIX = {
    "datasets": [{"name": "hospital", "rows": 80}, {"name": "food", "rows": 80}],
    "error_profiles": ["native", "bart-mix"],
    "label_budgets": [0.1],
    "methods": ["cv", "od"],
    "trials": 2,
    "seed": 3,
}


def spec(**overrides) -> ScenarioSpec:
    base = dict(
        dataset="hospital", error_profile="native", label_budget=0.1, method="cv",
        rows=80, trials=2, seed=3,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def fake_runner(s: ScenarioSpec) -> dict:
    return {
        "fingerprint": s.fingerprint(),
        "spec": s.to_dict(),
        "metrics": {"precision": 1.0, "recall": 1.0, "f1": 1.0},
        "mean_f1": 1.0,
        "std_f1": 0.0,
        "trials": [],
        "runtimes": [],
        "median_runtime": 0.0,
        "elapsed": 0.0,
    }


class TestFingerprint:
    def test_stable_across_param_dict_ordering(self):
        a = spec(method_params={"epochs": 3, "embedding_dim": 8})
        b = spec(method_params={"embedding_dim": 8, "epochs": 3})
        assert a.fingerprint() == b.fingerprint()

    def test_changes_with_every_field(self):
        base = spec().fingerprint()
        for change in (
            dict(dataset="food"),
            dict(rows=81),
            dict(error_profile="typos"),
            dict(error_params={"error_rate": 0.1}),
            dict(label_budget=0.2),
            dict(method="od"),
            dict(method_params={"epochs": 1}),
            dict(trials=3),
            dict(sampling_fraction=0.3),
            dict(seed=4),
        ):
            assert spec(**change).fingerprint() != base, change

    def test_directly_built_spec_resolves_default_rows(self):
        from repro.data.registry import DEFAULT_ROWS

        bare = ScenarioSpec(
            dataset="hospital", error_profile="native", label_budget=0.1, method="cv"
        )
        assert bare.rows == DEFAULT_ROWS["hospital"]
        explicit = spec(rows=DEFAULT_ROWS["hospital"], trials=3, seed=0, label_budget=0.1)
        assert bare.fingerprint() == explicit.fingerprint()

    def test_json_roundtrip_preserves_fingerprint(self):
        original = spec(method_params={"epochs": 3})
        revived = ScenarioSpec(**json.loads(json.dumps(original.to_dict())))
        assert revived.fingerprint() == original.fingerprint()


class TestScopedSeeds:
    def test_dataset_seed_shared_across_other_axes(self):
        base = spec()
        for other in (spec(method="od"), spec(label_budget=0.2), spec(error_profile="typos")):
            assert other.dataset_seed == base.dataset_seed
        assert spec(dataset="food").dataset_seed != base.dataset_seed
        assert spec(rows=100).dataset_seed != base.dataset_seed

    def test_errors_seed_scoping(self):
        base = spec()
        assert spec(method="od").errors_seed == base.errors_seed
        assert spec(label_budget=0.2).errors_seed == base.errors_seed
        assert spec(error_profile="typos").errors_seed != base.errors_seed
        assert spec(error_params={"error_rate": 0.2}).errors_seed != base.errors_seed

    def test_trials_seed_shared_across_methods_only(self):
        base = spec()
        assert spec(method="od").trials_seed == base.trials_seed
        assert spec(label_budget=0.2).trials_seed != base.trials_seed

    def test_methods_see_identical_splits(self):
        """Two methods at one grid point are evaluated on identical splits."""
        from repro.data import load_dataset
        from repro.evaluation import run_trials

        seen = []

        def recorder(bundle, split, rng):
            seen.append((tuple(split.training_cells), tuple(split.test_cells)))
            return set()

        for s in (spec(method="cv"), spec(method="od")):
            bundle = load_dataset(s.dataset, num_rows=s.rows, seed=s.dataset_seed)
            run_trials(recorder, bundle, s.label_budget, num_trials=2, seed=s.trials_seed)
        assert seen[0] == seen[2] and seen[1] == seen[3]


class TestMatrixValidation:
    def test_happy_path_expansion(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        specs = matrix.expand()
        assert len(specs) == 2 * 2 * 1 * 2
        # Declared nesting order: datasets > profiles > budgets > methods.
        assert [s.method for s in specs[:2]] == ["cv", "od"]
        assert specs[0].dataset == "hospital" and specs[-1].dataset == "food"
        assert all(s.trials == 2 and s.seed == 3 for s in specs)

    def test_matrix_wrapper_key(self):
        assert ScenarioMatrix.from_dict({"matrix": SMALL_MATRIX}).expand()

    def test_rejects_keys_outside_the_matrix_table(self):
        with pytest.raises(MatrixSpecError, match="outside the \\[matrix\\] table"):
            ScenarioMatrix.from_dict({"matrix": SMALL_MATRIX, "seed": 7})

    @pytest.mark.parametrize("key", ["datasets", "error_profiles", "label_budgets", "methods"])
    def test_rejects_bare_string_axes(self, key):
        payload = dict(SMALL_MATRIX)
        payload[key] = "hospital"
        with pytest.raises(MatrixSpecError, match=f"non-empty {key!r} list"):
            ScenarioMatrix.from_dict(payload)

    def test_omitted_rows_resolve_to_registry_default(self):
        from repro.data.registry import DEFAULT_ROWS

        payload = dict(SMALL_MATRIX, datasets=["hospital"])
        specs = ScenarioMatrix.from_dict(payload).expand()
        assert all(s.rows == DEFAULT_ROWS["hospital"] for s in specs)
        # The resolved size is pinned in the fingerprint: an explicit
        # rows=default and an omitted rows are the same scenario.
        explicit = dict(SMALL_MATRIX, datasets=[{"name": "hospital", "rows": DEFAULT_ROWS["hospital"]}])
        assert [s.fingerprint() for s in ScenarioMatrix.from_dict(explicit).expand()] == [
            s.fingerprint() for s in specs
        ]

    def test_duplicate_entries_dedupe(self):
        payload = dict(SMALL_MATRIX, methods=["cv", "cv"])
        specs = ScenarioMatrix.from_dict(payload).expand()
        assert len(specs) == 2 * 2 * 1 * 1

    @pytest.mark.parametrize(
        "mutation,match",
        [
            (dict(datasets=[]), "non-empty"),
            (dict(datasets=["atlantis"]), "unknown dataset"),
            (dict(datasets=[{"name": "hospital", "rows": -1}]), "positive integer"),
            (dict(datasets=[{"name": "hospital", "cols": 3}]), "unknown keys"),
            (dict(datasets=[3]), "string or a table"),
            (dict(methods=["quantum"]), "unknown method"),
            (dict(methods=[{"name": "cv", "epochs": 2}]), "takes no parameters"),
            (dict(methods=[{"name": "holodetect", "epoochs": 2}]), "unknown detector parameters"),
            (dict(error_profiles=[]), "non-empty"),
            (dict(error_profiles=["martian"]), "unknown profile"),
            (dict(error_profiles=[{"name": "native", "error_rate": 0.5}]), "takes no parameters"),
            (dict(error_profiles=[{"name": "typos", "error_rte": 0.1}]), "unexpected keyword"),
            (dict(label_budgets=[0.0]), "must be in"),
            (dict(label_budgets=[1.5]), "must be in"),
            (dict(trials=0), "positive integer"),
            (dict(sampling_fraction=1.0), "sampling_fraction"),
            (dict(seed="abc"), "seed must be"),
            (dict(universe=42), "unknown spec keys"),
        ],
    )
    def test_rejects_malformed_specs(self, mutation, match):
        payload = dict(SMALL_MATRIX)
        payload.update(mutation)
        with pytest.raises(MatrixSpecError, match=match):
            ScenarioMatrix.from_dict(payload)

    def test_from_file_toml_and_json(self, tmp_path):
        toml_path = tmp_path / "m.toml"
        toml_path.write_text(
            '[matrix]\ndatasets = ["hospital"]\nlabel_budgets = [0.1]\nmethods = ["cv"]\n'
        )
        json_path = tmp_path / "m.json"
        json_path.write_text(json.dumps(SMALL_MATRIX))
        assert len(ScenarioMatrix.from_file(toml_path).expand()) == 1
        assert len(ScenarioMatrix.from_file(json_path).expand()) == 8

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(MatrixSpecError, match="not found"):
            ScenarioMatrix.from_file(tmp_path / "missing.toml")
        bad_toml = tmp_path / "bad.toml"
        bad_toml.write_text("datasets = [unclosed")
        with pytest.raises(MatrixSpecError, match="invalid TOML"):
            ScenarioMatrix.from_file(bad_toml)
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{")
        with pytest.raises(MatrixSpecError, match="invalid JSON"):
            ScenarioMatrix.from_file(bad_json)
        odd = tmp_path / "spec.yaml"
        odd.write_text("x")
        with pytest.raises(MatrixSpecError, match="unsupported spec format"):
            ScenarioMatrix.from_file(odd)

    def test_to_dict_roundtrip(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        again = ScenarioMatrix.from_dict(matrix.to_dict())
        assert [s.fingerprint() for s in again.expand()] == [
            s.fingerprint() for s in matrix.expand()
        ]


class TestRunScenario:
    def test_record_shape(self):
        record = run_scenario(spec(trials=2))
        assert record["fingerprint"] == spec(trials=2).fingerprint()
        assert set(record["metrics"]) == {"precision", "recall", "f1"}
        assert len(record["trials"]) == 2
        assert len(record["runtimes"]) == 2
        assert record["elapsed"] >= 0.0

    def test_deterministic(self):
        a, b = run_scenario(spec(trials=2)), run_scenario(spec(trials=2))
        assert a["metrics"] == b["metrics"]
        assert a["trials"] == b["trials"]

    def test_error_profile_changes_the_bundle(self):
        native = run_scenario(spec(method="od", trials=2))
        swapped = run_scenario(spec(method="od", trials=2, error_profile="swaps"))
        assert native["metrics"] != swapped["metrics"]


class TestClampWorkers:
    @pytest.mark.parametrize(
        "requested,pending,expected",
        [(0, 5, 1), (-3, 5, 1), (1, 5, 1), (4, 2, 2), (4, 0, 1), (1000, 1000, 64)],
    )
    def test_clamp(self, requested, pending, expected):
        assert clamp_workers(requested, pending) == expected


class TestRunMatrix:
    def test_parallel_threads_match_serial(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        serial = run_matrix(matrix, workers=1)
        threaded = run_matrix(matrix, workers=4, executor="thread")
        assert threaded.workers == 4
        for a, b in zip(serial.records, threaded.records):
            assert a["metrics"] == b["metrics"]
            assert a["trials"] == b["trials"]
            assert a["fingerprint"] == b["fingerprint"]

    def test_records_in_expansion_order(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        report = run_matrix(matrix, workers=4, executor="thread", scenario_runner=fake_runner)
        assert [r["fingerprint"] for r in report.records] == [
            s.fingerprint() for s in matrix.expand()
        ]

    def test_store_resume_runs_only_missing(self, tmp_path):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        store_path = tmp_path / "store.jsonl"
        calls: list[str] = []
        lock = threading.Lock()

        def counting_runner(s):
            with lock:
                calls.append(s.fingerprint())
            return fake_runner(s)

        first = run_matrix(
            matrix, store=ResultStore(store_path), resume=True, scenario_runner=counting_runner
        )
        assert first.executed == 8 and first.cached == 0
        assert len(calls) == 8

        # Drop half the store: only those scenarios re-execute.
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:4]) + "\n")
        calls.clear()
        second = run_matrix(
            matrix, store=ResultStore(store_path), resume=True, scenario_runner=counting_runner
        )
        assert second.executed == 4 and second.cached == 4
        assert len(calls) == 4
        assert sorted(r["fingerprint"] for r in second.records) == sorted(
            r["fingerprint"] for r in first.records
        )
        assert sum(r["cached"] for r in second.records) == 4

        # Third run: everything served from disk, nothing executes.
        calls.clear()
        third = run_matrix(
            matrix, store=ResultStore(store_path), resume=True, scenario_runner=counting_runner
        )
        assert third.executed == 0 and third.cached == 8
        assert calls == []

    def test_without_resume_reexecutes_everything(self, tmp_path):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        store = ResultStore(tmp_path / "store.jsonl")
        run_matrix(matrix, store=store, resume=True, scenario_runner=fake_runner)
        calls = []

        def counting_runner(s):
            calls.append(s)
            return fake_runner(s)

        report = run_matrix(matrix, store=store, resume=False, scenario_runner=counting_runner)
        assert report.executed == 8 and len(calls) == 8

    def test_on_result_sees_every_record(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        seen = []
        run_matrix(matrix, scenario_runner=fake_runner, on_result=seen.append)
        assert len(seen) == 8

    def test_unknown_executor(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        with pytest.raises(ValueError, match="unknown executor"):
            run_matrix(matrix, executor="carrier-pigeon")

    @pytest.mark.parametrize("kwargs", [dict(), dict(workers=4, executor="thread")])
    def test_failing_scenario_names_the_grid_point(self, tmp_path, kwargs):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        boom = matrix.expand()[2].fingerprint()
        sibling_done = threading.Event()

        def flaky_runner(s):
            if s.fingerprint() == boom:
                # Only fail once a sibling has finished, so the assertion
                # that completed work reaches the store is deterministic.
                assert sibling_done.wait(timeout=10)
                raise RuntimeError("degenerate split")
            record = fake_runner(s)
            sibling_done.set()
            return record

        store = ResultStore(tmp_path / "store.jsonl")
        with pytest.raises(RuntimeError, match="hospital/bart-mix/0.1/cv .*failed"):
            run_matrix(matrix, store=store, scenario_runner=flaky_runner, **kwargs)
        # Scenarios completed before the failure are already flushed, so a
        # --resume rerun (with the bug fixed) picks up from the store.
        assert 0 < len(store) < 8
        assert boom not in store.fingerprints

    def test_report_table_and_json(self):
        matrix = ScenarioMatrix.from_dict(SMALL_MATRIX)
        report = run_matrix(matrix, scenario_runner=fake_runner)
        table = report.table()
        assert table.count("\n") == 8 + 1  # header + separator + 8 rows
        payload = report.to_json()
        assert payload["schema"] == "repro.sweep/v1"
        assert payload["total"] == 8
        assert payload["executed"] == 8 and payload["cached"] == 0
        assert len(payload["scenarios"]) == 8
        json.dumps(payload)  # must be JSON-serialisable
