"""Property-based tests for matrix expansion and the result store.

Hypothesis hunts for the failure modes a hand-picked example suite misses:
fingerprints that depend on dict insertion order, expansions that collide
or change across calls, stores that lose or duplicate records under
truncation, and resumed sweeps that diverge from fresh ones.
"""

from __future__ import annotations

import json
import string
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.data.registry import DATASET_NAMES
from repro.errors.profiles import profile_names
from repro.evaluation.matrix import ScenarioMatrix, ScenarioSpec, run_matrix
from repro.evaluation.store import ResultStore

# Parameter dictionaries: finite floats only (NaN breaks any equality check
# by definition) and lowercase keys so TOML/JSON round-trips are trivial.
_keys = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=8)
_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.ascii_letters, max_size=8),
    st.booleans(),
)
_param_dicts = st.dictionaries(_keys, _values, max_size=5)

_axes = st.fixed_dictionaries(
    {
        "datasets": st.lists(st.sampled_from(DATASET_NAMES), min_size=1, max_size=3, unique=True),
        "error_profiles": st.lists(
            st.sampled_from(profile_names()), min_size=1, max_size=3, unique=True
        ),
        "label_budgets": st.lists(
            st.sampled_from([0.05, 0.1, 0.2, 0.3]), min_size=1, max_size=3, unique=True
        ),
        "methods": st.lists(
            st.sampled_from(["cv", "od", "fbi", "lr"]), min_size=1, max_size=3, unique=True
        ),
        "trials": st.integers(1, 5),
        "seed": st.integers(0, 2**31),
    }
)


def _fake_runner(spec: ScenarioSpec) -> dict:
    """Cheap deterministic stand-in for run_scenario (pure function of spec)."""
    f1 = (spec.trials_seed % 1000) / 1000.0
    return {
        "fingerprint": spec.fingerprint(),
        "spec": spec.to_dict(),
        "metrics": {"precision": f1, "recall": f1, "f1": f1},
        "mean_f1": f1,
        "std_f1": 0.0,
        "trials": [],
        "runtimes": [],
        "median_runtime": 0.0,
        "elapsed": 0.0,
    }


@given(params=_param_dicts, error_params=_param_dicts, seed=st.integers(0, 2**31))
def test_fingerprint_independent_of_dict_ordering(params, error_params, seed):
    forward = ScenarioSpec(
        dataset="hospital",
        error_profile="custom",
        label_budget=0.1,
        method="holodetect",
        method_params=dict(params),
        error_params=dict(error_params),
        seed=seed,
    )
    reversed_spec = ScenarioSpec(
        dataset="hospital",
        error_profile="custom",
        label_budget=0.1,
        method="holodetect",
        method_params=dict(reversed(list(params.items()))),
        error_params=dict(reversed(list(error_params.items()))),
        seed=seed,
    )
    assert forward.fingerprint() == reversed_spec.fingerprint()
    assert forward.trials_seed == reversed_spec.trials_seed


@given(params=_param_dicts)
def test_fingerprint_survives_json_roundtrip(params):
    spec = ScenarioSpec(
        dataset="food",
        error_profile="typos",
        label_budget=0.2,
        method="od",
        method_params=dict(params),
    )
    revived = ScenarioSpec(**json.loads(json.dumps(spec.to_dict())))
    assert revived.fingerprint() == spec.fingerprint()


@given(axes=_axes)
def test_expansion_is_a_complete_unique_product(axes):
    matrix = ScenarioMatrix.from_dict(axes)
    specs = matrix.expand()
    expected = (
        len(axes["datasets"])
        * len(axes["error_profiles"])
        * len(axes["label_budgets"])
        * len(axes["methods"])
    )
    assert len(specs) == expected
    fingerprints = [s.fingerprint() for s in specs]
    assert len(set(fingerprints)) == len(fingerprints)
    # Expansion is deterministic: same matrix, same specs, same order.
    assert [s.fingerprint() for s in matrix.expand()] == fingerprints
    assert all(s.trials == axes["trials"] and s.seed == axes["seed"] for s in specs)


@given(axes=_axes, keep=st.data())
@settings(max_examples=25, deadline=None)
def test_resume_equals_fresh_run_and_never_duplicates(axes, keep):
    matrix = ScenarioMatrix.from_dict(axes)
    total = len(matrix.expand())
    executed: list[str] = []

    def counting_runner(spec):
        executed.append(spec.fingerprint())
        return _fake_runner(spec)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "store.jsonl"
        fresh = run_matrix(
            matrix, store=ResultStore(store_path), resume=True, scenario_runner=counting_runner
        )
        assert len(executed) == len(set(executed)) == total

        # Kill simulation: keep an arbitrary subset of completed lines.
        lines = store_path.read_text().splitlines()
        kept = [
            line for line in lines if keep.draw(st.booleans(), label="keep line")
        ]
        store_path.write_text("".join(line + "\n" for line in kept))

        executed.clear()
        resumed = run_matrix(
            matrix, store=ResultStore(store_path), resume=True, scenario_runner=counting_runner
        )
        # Only the dropped scenarios re-ran, none twice.
        assert len(executed) == len(set(executed)) == total - len(kept)
        assert resumed.cached == len(kept)
        # Resume-equals-fresh: identical records modulo the cached flag.
        for a, b in zip(fresh.records, resumed.records):
            a, b = dict(a), dict(b)
            a.pop("cached"), b.pop("cached")
            assert a == b


_records = st.lists(
    st.tuples(st.text(alphabet="abcdef0123456789", min_size=4, max_size=8), st.integers()),
    max_size=20,
)


@given(entries=_records)
def test_store_latest_record_wins(entries):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store.jsonl"
        store = ResultStore(path)
        expected: dict[str, int] = {}
        for fingerprint, value in entries:
            store.put({"fingerprint": fingerprint, "value": value})
            expected[fingerprint] = value
        reloaded = ResultStore(path)
        assert reloaded.fingerprints == set(expected)
        for fingerprint, value in expected.items():
            assert store.get(fingerprint)["value"] == value
            assert reloaded.get(fingerprint)["value"] == value


@given(entries=_records, garbage=st.text(max_size=30))
def test_store_tolerates_corrupt_tail(entries, garbage):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store.jsonl"
        store = ResultStore(path)
        for fingerprint, value in entries:
            store.put({"fingerprint": fingerprint, "value": value})
        # Simulate a kill mid-append: a trailing partial line.  Quotes,
        # braces, and newlines are stripped from the fuzz so the string
        # literal can never be accidentally terminated into valid JSON.
        tail = garbage.replace("\n", " ").replace('"', "").replace("}", "")
        with path.open("a", encoding="utf-8") as f:
            f.write('{"fingerprint": "trunc' + tail)
        reloaded = ResultStore(path)
        assert reloaded.fingerprints == store.fingerprints
        assert reloaded.skipped_lines >= 1
