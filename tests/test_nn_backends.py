"""Compute-backend tests: kernel gradient checks + equivalence + wiring.

Every backend implements the same kernel-level API (see
:class:`repro.nn.backend.ComputeBackend`), so one suite gradient-checks
every fused kernel on every available backend against central finite
differences — the same ground truth ``test_nn_tensor.py`` holds the
autodiff ops to.  On top of the kernel checks:

- the ``numpy`` backend trains **bit-identically** to the ``reference``
  (autodiff graph) backend at float64 — parameters, loss history, and the
  fused prediction path;
- the optional ``torch`` backend matches within documented tolerance and
  every torch test skips when torch is absent;
- backend selection wiring: registry keys and ``module:attr`` references,
  the process-ambient default, ``DetectorConfig`` validation, and the
  non-fingerprinted ``[compute]`` spec table.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detector import DetectorConfig
from repro.core.model import JointModel
from repro.core.training import TrainerConfig, train_model
from repro.features.pipeline import CellFeatures
from repro.nn.backend import (
    DEFAULT_BACKEND,
    SUPPORTED_DTYPES,
    BackendUnavailable,
    backend_names,
    default_backend_name,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.registry import ComponentError
from repro.spec import SPEC_SCHEMA, DetectorSpec, SpecError


def _torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


BACKENDS = ["reference", "numpy"] + (["torch"] if _torch_available() else [])

#: Kernel-level agreement with finite differences / the reference backend.
#: torch float64 kernels reorder reductions, hence the looser bound.
KERNEL_ATOL = {"reference": 1e-6, "numpy": 1e-6, "torch": 1e-5}


@pytest.fixture(params=BACKENDS)
def backend(request):
    return resolve_backend(request.param)


def finite_difference(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f(x)
        flat[i] = original - eps
        minus = f(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


# --------------------------------------------------------------------- #
# Kernel gradient checks (every backend vs central finite differences)
# --------------------------------------------------------------------- #


class TestKernelGradients:
    def test_affine_grad(self, backend):
        rng = np.random.default_rng(0)
        x, W, b = rng.normal(size=(5, 4)), rng.normal(size=(4, 3)), rng.normal(size=3)
        R = rng.normal(size=(5, 3))  # contraction weights: L = sum(y * R)
        dx, dW, db = backend.affine_grad(x, W, R)
        atol = KERNEL_ATOL[backend.name]
        np.testing.assert_allclose(
            dx, finite_difference(lambda a: (backend.affine(a, W, b) * R).sum(), x.copy()),
            atol=atol,
        )
        np.testing.assert_allclose(
            dW, finite_difference(lambda a: (backend.affine(x, a, b) * R).sum(), W.copy()),
            atol=atol,
        )
        # bias grads come back in the layer's storage shape (1, d)
        np.testing.assert_allclose(
            np.ravel(db),
            finite_difference(lambda a: (backend.affine(x, W, a) * R).sum(), b.copy()),
            atol=atol,
        )

    def test_relu_grad(self, backend):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 6))
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        R = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            backend.relu_grad(x, R),
            finite_difference(lambda a: (backend.relu(a) * R).sum(), x.copy()),
            atol=KERNEL_ATOL[backend.name],
        )

    def test_sigmoid_grad(self, backend):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 5))
        R = rng.normal(size=(3, 5))
        s = backend.sigmoid(x)
        np.testing.assert_allclose(
            backend.sigmoid_grad(s, R),
            finite_difference(lambda a: (backend.sigmoid(a) * R).sum(), x.copy()),
            atol=KERNEL_ATOL[backend.name],
        )

    def test_highway_grad(self, backend):
        rng = np.random.default_rng(3)
        d = 4
        x = rng.normal(size=(6, d))
        Wt, Wg = rng.normal(size=(d, d)), rng.normal(size=(d, d))
        bt, bg = rng.normal(size=d), rng.normal(size=d)
        R = rng.normal(size=(6, d))
        atol = KERNEL_ATOL[backend.name]

        def loss(xx=x, wt=Wt, btb=bt, wg=Wg, bgb=bg):
            y, _ = backend.highway(xx, wt, btb, wg, bgb)
            return (y * R).sum()

        _, cache = backend.highway(x, Wt, bt, Wg, bg)
        grads = backend.highway_grad(cache, R, need_dx=True)
        np.testing.assert_allclose(
            grads["dx"], finite_difference(lambda a: loss(xx=a), x.copy()), atol=atol
        )
        np.testing.assert_allclose(
            grads["dWt"], finite_difference(lambda a: loss(wt=a), Wt.copy()), atol=atol
        )
        np.testing.assert_allclose(
            np.ravel(grads["dbt"]),
            finite_difference(lambda a: loss(btb=a), bt.copy()),
            atol=atol,
        )
        np.testing.assert_allclose(
            grads["dWg"], finite_difference(lambda a: loss(wg=a), Wg.copy()), atol=atol
        )
        np.testing.assert_allclose(
            np.ravel(grads["dbg"]),
            finite_difference(lambda a: loss(bgb=a), bg.copy()),
            atol=atol,
        )
        # need_dx=False must still deliver the weight gradients
        _, cache = backend.highway(x, Wt, bt, Wg, bg)
        slim = backend.highway_grad(cache, R, need_dx=False)
        assert "dx" not in slim
        np.testing.assert_allclose(slim["dWt"], grads["dWt"], atol=atol)

    def test_softmax_xent(self, backend):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(6, 3))
        targets = rng.integers(0, 3, size=6)
        loss, dlogits = backend.softmax_xent(logits, targets)
        # loss value: mean negative log-softmax of the target class
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(6), targets].mean()
        assert loss == pytest.approx(expected, abs=1e-9)
        np.testing.assert_allclose(
            dlogits,
            finite_difference(
                lambda a: backend.softmax_xent(a, targets)[0], logits.copy()
            ),
            atol=KERNEL_ATOL[backend.name],
        )

    @pytest.mark.parametrize("t", [1, 7])
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_step_matches_reference(self, backend, t, weight_decay):
        reference = resolve_backend("reference")
        rng = np.random.default_rng(5)
        p = rng.normal(size=(4, 3))
        g = rng.normal(size=(4, 3))
        m = rng.normal(size=(4, 3)) * 0.1
        v = np.abs(rng.normal(size=(4, 3))) * 0.1
        expect_p, expect_m, expect_v = p.copy(), m.copy(), v.copy()
        reference.adam_step(
            expect_p, g, expect_m, expect_v, t, lr=1e-2, weight_decay=weight_decay
        )
        got_p, got_m, got_v = p.copy(), m.copy(), v.copy()
        backend.adam_step(
            got_p, g, got_m, got_v, t, lr=1e-2, weight_decay=weight_decay
        )
        atol = KERNEL_ATOL[backend.name]
        np.testing.assert_allclose(got_p, expect_p, atol=atol)
        np.testing.assert_allclose(got_m, expect_m, atol=atol)
        np.testing.assert_allclose(got_v, expect_v, atol=atol)


class TestKernelGradientProperties:
    """Hypothesis sweep: affine gradients hold across shapes and data."""

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 5),
        inner=st.integers(1, 4),
        cols=st.integers(1, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_affine_grad_any_shape(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        x, W = rng.normal(size=(rows, inner)), rng.normal(size=(inner, cols))
        b, R = rng.normal(size=cols), rng.normal(size=(rows, cols))
        for name in BACKENDS:
            backend = resolve_backend(name)
            dx, dW, db = backend.affine_grad(x, W, R)
            np.testing.assert_allclose(
                dx,
                finite_difference(
                    lambda a: (backend.affine(a, W, b) * R).sum(), x.copy()
                ),
                atol=1e-5,
            )
            np.testing.assert_allclose(
                dW,
                finite_difference(
                    lambda a: (backend.affine(x, a, b) * R).sum(), W.copy()
                ),
                atol=1e-5,
            )
            np.testing.assert_allclose(np.ravel(db), R.sum(axis=0), atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 6),
        classes=st.integers(2, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_softmax_xent_grad_any_shape(self, rows, classes, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(rows, classes))
        targets = rng.integers(0, classes, size=rows)
        for name in BACKENDS:
            backend = resolve_backend(name)
            _, dlogits = backend.softmax_xent(logits, targets)
            np.testing.assert_allclose(
                dlogits,
                finite_difference(
                    lambda a: backend.softmax_xent(a, targets)[0], logits.copy()
                ),
                atol=1e-5,
            )
            # softmax gradient rows sum to zero
            np.testing.assert_allclose(
                dlogits.sum(axis=1), np.zeros(rows), atol=1e-12
            )


# --------------------------------------------------------------------- #
# Training / prediction equivalence
# --------------------------------------------------------------------- #


def _problem(n=60, numeric=5, branch=6, seed=1):
    rng = np.random.default_rng(0)
    branches = {"char": branch, "word": branch}
    features = CellFeatures(
        numeric=rng.normal(size=(n, numeric)),
        branches={k: rng.normal(size=(n, d)) for k, d in branches.items()},
    )
    labels = rng.integers(0, 2, size=n)
    model = JointModel(
        numeric, branches, hidden_dim=8, dropout=0.2,
        rng=np.random.default_rng(seed),
    )
    return model, features, labels


_SMALL = dict(epochs=4, batch_size=8, min_steps=20, seed=9)


class TestTrainingEquivalence:
    def test_numpy_bit_identical_to_reference(self):
        graph_model, features, labels = _problem()
        graph_history = train_model(
            graph_model, features, labels,
            TrainerConfig(**_SMALL, backend="reference"),
        )
        fused_model, _, _ = _problem()
        fused_history = train_model(
            fused_model, features, labels, TrainerConfig(**_SMALL, backend="numpy")
        )
        assert graph_history == fused_history
        for a, b in zip(graph_model.state_arrays(), fused_model.state_arrays()):
            assert np.array_equal(a, b)

    def test_predict_logits_bit_identical(self):
        model, features, labels = _problem()
        train_model(model, features, labels, TrainerConfig(**_SMALL))
        graph = resolve_backend("reference").predict_logits(model, features)
        fused = resolve_backend("numpy").predict_logits(model, features)
        assert np.array_equal(graph, fused)

    def test_float32_trains_close_to_float64(self):
        f64_model, features, labels = _problem()
        train_model(
            f64_model, features, labels, TrainerConfig(**_SMALL, dtype="float64")
        )
        f32_model, _, _ = _problem()
        history = train_model(
            f32_model, features, labels, TrainerConfig(**_SMALL, dtype="float32")
        )
        assert all(np.isfinite(loss) for loss in history)
        for a, b in zip(f64_model.state_arrays(), f32_model.state_arrays()):
            assert a.dtype == np.float64  # finalize restores model dtype
            np.testing.assert_allclose(a, b, atol=1e-3)

    @pytest.mark.skipif(not _torch_available(), reason="torch not installed")
    def test_torch_trains_within_tolerance(self):
        f64_model, features, labels = _problem()
        train_model(
            f64_model, features, labels, TrainerConfig(**_SMALL, backend="numpy")
        )
        torch_model, _, _ = _problem()
        train_model(
            torch_model, features, labels, TrainerConfig(**_SMALL, backend="torch")
        )
        for a, b in zip(f64_model.state_arrays(), torch_model.state_arrays()):
            np.testing.assert_allclose(a, b, atol=1e-6)

    def test_dtype_validation(self):
        with pytest.raises(ValueError, match="dtype"):
            TrainerConfig(**_SMALL, dtype="float16")


# --------------------------------------------------------------------- #
# Selection wiring: registry, ambient default, config, spec
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_builtin_names_registered(self):
        names = backend_names()
        for key in ("numpy", "reference", "torch"):
            assert key in names

    def test_default_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert resolve_backend().name == "numpy"

    def test_module_attr_reference_resolves(self):
        backend = resolve_backend("repro.nn.backends.graph_backend:GraphBackend")
        assert backend.name == "reference"

    def test_unknown_backend_raises(self):
        with pytest.raises(ComponentError):
            resolve_backend("no-such-backend")

    @pytest.mark.skipif(_torch_available(), reason="torch installed")
    def test_torch_unavailable_raises_backend_unavailable(self):
        with pytest.raises(BackendUnavailable, match="torch"):
            resolve_backend("torch")

    def test_ambient_default_scoping(self):
        assert default_backend_name() == "numpy"
        with use_backend("reference"):
            assert default_backend_name() == "reference"
            assert resolve_backend().name == "reference"
        assert default_backend_name() == "numpy"
        previous = set_default_backend("reference")
        try:
            assert previous is None
            assert default_backend_name() == "reference"
        finally:
            set_default_backend(previous)

    def test_detector_config_validation(self):
        with pytest.raises(ValueError, match="backend"):
            DetectorConfig(backend=123)
        with pytest.raises(ValueError, match="compute_dtype"):
            DetectorConfig(compute_dtype="float16")
        config = DetectorConfig(backend="reference", compute_dtype="float32")
        assert config.backend == "reference"
        assert config.compute_dtype in SUPPORTED_DTYPES


class TestComputeSpecTable:
    def _spec(self, compute=None):
        payload = {"schema": SPEC_SCHEMA, "detector": {"epochs": 3}}
        if compute is not None:
            payload["compute"] = compute
        return DetectorSpec.from_dict(payload)

    def test_compute_table_parses_and_maps_to_config(self):
        from repro.core import HoloDetect

        spec = self._spec({"backend": "reference", "dtype": "float32"})
        config = HoloDetect.from_spec(spec).config
        assert config.backend == "reference"
        assert config.compute_dtype == "float32"

    def test_compute_is_not_fingerprinted(self):
        bare = self._spec()
        pinned = self._spec({"backend": "reference", "dtype": "float32"})
        assert bare.fingerprint() == pinned.fingerprint()

    def test_backend_rejected_under_detector_table(self):
        with pytest.raises(SpecError, match=r"\[compute\]"):
            DetectorSpec.from_dict(
                {"schema": SPEC_SCHEMA, "detector": {"backend": "numpy"}}
            )

    def test_validate_rejects_unknown_compute_key(self):
        with pytest.raises(SpecError, match="compute"):
            self._spec({"device": "gpu"})

    def test_validate_rejects_unknown_compute_backend(self):
        with pytest.raises(SpecError, match="backend"):
            self._spec({"backend": "no-such-backend"})

    def test_validate_rejects_bad_compute_dtype(self):
        with pytest.raises(SpecError, match="dtype"):
            self._spec({"dtype": "float16"})

    def test_describe_mentions_compute(self):
        spec = self._spec({"backend": "reference"})
        assert "not fingerprinted" in spec.describe()

    def test_to_dict_round_trips_compute(self):
        spec = self._spec({"backend": "reference"})
        again = DetectorSpec.from_dict(spec.to_dict())
        assert dict(again.compute)["backend"] == "reference"
