"""Unit tests for layers and module containers."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Highway,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_affine_math(self):
        layer = Linear(2, 2, rng=0)
        layer.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias.data = np.array([[1.0, -1.0]])
        out = layer(Tensor(np.array([[3.0, 4.0]])))
        np.testing.assert_allclose(out.numpy(), [[4.0, 7.0]])

    def test_parameters_discovered(self):
        layer = Linear(3, 2, rng=0)
        params = list(layer.parameters())
        assert len(params) == 2


class TestActivations:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([[-1.0, 2.0]])))
        np.testing.assert_allclose(out.numpy(), [[0.0, 2.0]])

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor(np.array([[-100.0, 0.0, 100.0]])))
        assert out.numpy()[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert out.numpy()[0, 1] == pytest.approx(0.5)
        assert out.numpy()[0, 2] == pytest.approx(1.0, abs=1e-9)

    def test_tanh(self):
        out = Tanh()(Tensor(np.array([[0.0]])))
        assert out.numpy()[0, 0] == 0.0


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=0).eval()
        x = np.ones((10, 10))
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x)

    def test_training_mode_scales_survivors(self):
        layer = Dropout(0.5, rng=0)
        out = layer(Tensor(np.ones((200, 200)))).numpy()
        # Survivors are scaled by 1/keep = 2; mean stays ~1.
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_probability_identity(self):
        layer = Dropout(0.0)
        x = np.random.default_rng(0).normal(size=(4, 4))
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestHighway:
    def test_preserves_width(self):
        layer = Highway(8, rng=0)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(3, 8))))
        assert out.shape == (3, 8)

    def test_starts_near_identity(self):
        """Negative gate bias means a fresh layer mostly passes input through."""
        layer = Highway(16, rng=0)
        x = np.random.default_rng(1).normal(size=(20, 16))
        out = layer(Tensor(x)).numpy()
        # Output correlates strongly with input at init.
        corr = np.corrcoef(out.ravel(), x.ravel())[0, 1]
        assert corr > 0.7

    def test_trainable(self):
        layer = Highway(4, rng=0)
        out = layer(Tensor(np.ones((2, 4)), requires_grad=False))
        loss = (out * out).sum()
        loss.backward()
        grads = [p.grad for p in layer.parameters()]
        assert all(g is not None for g in grads)


class TestSequentialAndModule:
    def test_composition(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(model) == 3

    def test_parameter_recursion(self):
        model = Sequential(Linear(2, 2, rng=0), Sequential(Linear(2, 2, rng=1)))
        assert len(list(model.parameters())) == 4

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.children())
        model.train()
        assert all(m.training for m in model.children())

    def test_num_parameters(self):
        model = Linear(3, 2, rng=0)
        assert model.num_parameters() == 3 * 2 + 2

    def test_zero_grad(self):
        model = Linear(2, 1, rng=0)
        model(Tensor(np.ones((1, 2)))).sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module().forward(Tensor([1.0]))
