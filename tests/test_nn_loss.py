"""Unit tests for loss functions, incl. gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor, binary_cross_entropy_with_logits, softmax_cross_entropy
from repro.nn.loss import softmax_probabilities


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_log2(self):
        logits = Tensor(np.zeros((4, 2)))
        loss = softmax_cross_entropy(logits, np.array([0, 1, 0, 1]))
        assert loss.item() == pytest.approx(np.log(2))

    def test_gradient_matches_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 3, 0])
        softmax_cross_entropy(logits, targets).backward()
        probs = softmax_probabilities(logits.data)
        expected = probs.copy()
        expected[np.arange(3), targets] -= 1.0
        expected /= 3
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_numerical_stability_large_logits(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]))
        loss = softmax_cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros((2, 2))), np.array([0]))


class TestBinaryCrossEntropy:
    def test_perfect_prediction(self):
        logits = Tensor(np.array([[20.0], [-20.0]]))
        loss = binary_cross_entropy_with_logits(logits, np.array([[1.0], [0.0]]))
        assert loss.item() < 1e-6

    def test_soft_targets_supported(self):
        logits = Tensor(np.zeros((2, 1)), requires_grad=True)
        loss = binary_cross_entropy_with_logits(logits, np.array([[0.7], [0.3]]))
        loss.backward()
        # gradient = (sigmoid(0) - target) / n = (0.5 - t) / 2
        np.testing.assert_allclose(logits.grad, [[-0.1], [0.1]], atol=1e-10)

    def test_numerical_stability(self):
        logits = Tensor(np.array([[800.0], [-800.0]]))
        loss = binary_cross_entropy_with_logits(logits, np.array([[0.0], [1.0]]))
        assert np.isfinite(loss.item())
        assert loss.item() > 100  # confidently wrong is very costly

    def test_finite_difference_gradient(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(5, 1))
        targets = rng.uniform(size=(5, 1))
        t = Tensor(z.copy(), requires_grad=True)
        binary_cross_entropy_with_logits(t, targets).backward()
        eps = 1e-6
        for i in range(5):
            z_plus, z_minus = z.copy(), z.copy()
            z_plus[i] += eps
            z_minus[i] -= eps
            num = (
                binary_cross_entropy_with_logits(Tensor(z_plus), targets).item()
                - binary_cross_entropy_with_logits(Tensor(z_minus), targets).item()
            ) / (2 * eps)
            assert t.grad[i, 0] == pytest.approx(num, abs=1e-5)


class TestSoftmaxProbabilities:
    def test_rows_sum_to_one(self):
        probs = softmax_probabilities(np.random.default_rng(0).normal(size=(4, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))

    def test_monotone_in_logits(self):
        probs = softmax_probabilities(np.array([[1.0, 2.0, 3.0]]))
        assert probs[0, 0] < probs[0, 1] < probs[0, 2]
