"""Unit tests for optimisers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Tensor, softmax_cross_entropy


def quadratic_loss(param: Tensor) -> Tensor:
    """(p - 3)^2 summed — minimum at 3."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Tensor(np.zeros(4), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss = quadratic_loss(p)
                loss.backward()
                opt.step()
            losses[momentum] = quadratic_loss(p).item()
        assert losses[0.9] < losses[0.0]

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.full(3, 10.0), requires_grad=True)
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-2)

    def test_skips_parameters_without_grad(self):
        p1 = Tensor([1.0], requires_grad=True)
        p2 = Tensor([1.0], requires_grad=True)
        opt = Adam([p1, p2], lr=0.1)
        (p1 * 2.0).sum().backward()
        opt.step()
        assert p1.data[0] != 1.0
        assert p2.data[0] == 1.0

    def test_weight_decay_shrinks_weights(self):
        p = Tensor(np.full(4, 5.0), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            # zero data gradient: only decay acts
            (p * 0.0).sum().backward()
            opt.step()
        assert np.all(np.abs(p.data) < 5.0)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_trains_linear_classifier(self):
        """End-to-end: a linear model separates a linearly separable set."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(int)
        model = Linear(3, 2, rng=1)
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = softmax_cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        predictions = model(Tensor(x)).numpy().argmax(axis=1)
        assert (predictions == y).mean() > 0.95
