"""Autograd tests: op-by-op backward checks plus hypothesis gradcheck.

Gradients are validated against central finite differences — the strongest
correctness guarantee available for a hand-rolled autograd engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat, no_grad


def finite_difference(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f(x)
        flat[i] = original - eps
        minus = f(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(op, x: np.ndarray, atol: float = 1e-5):
    """Compare autograd gradient of sum(op(x)) against finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    numeric = finite_difference(lambda arr: op(Tensor(arr)).sum().item(), x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


matrices = st.integers(1, 4).flatmap(
    lambda r: st.integers(1, 4).map(lambda c: (r, c))
)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda t: t + 3.0, np.random.default_rng(0).normal(size=(3, 4)))

    def test_mul(self):
        check_gradient(lambda t: t * t, np.random.default_rng(1).normal(size=(3, 4)))

    def test_div(self):
        x = np.random.default_rng(2).uniform(0.5, 2.0, size=(3, 3))
        check_gradient(lambda t: Tensor(1.0) / t, x)

    def test_pow(self):
        x = np.random.default_rng(3).uniform(0.5, 2.0, size=(2, 5))
        check_gradient(lambda t: t**3, x)

    def test_relu(self):
        # keep away from the kink at 0
        x = np.random.default_rng(4).normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_gradient(lambda t: t.relu(), x)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), np.random.default_rng(5).normal(size=(3, 3)))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), np.random.default_rng(6).normal(size=(3, 3)))

    def test_exp(self):
        check_gradient(lambda t: t.exp(), np.random.default_rng(7).normal(size=(2, 3)))

    def test_log(self):
        x = np.random.default_rng(8).uniform(0.5, 3.0, size=(3, 2))
        check_gradient(lambda t: t.log(), x)

    def test_neg_and_sub(self):
        check_gradient(lambda t: (-t) - t, np.random.default_rng(9).normal(size=(2, 2)))


class TestMatmulAndShapes:
    def test_matmul_grad(self):
        rng = np.random.default_rng(10)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 2)) @ b.T)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 2)))

    def test_reshape_grad(self):
        check_gradient(
            lambda t: t.reshape(6, 2) * 2.0, np.random.default_rng(11).normal(size=(3, 4))
        )

    def test_transpose_grad(self):
        check_gradient(lambda t: t.T * 3.0, np.random.default_rng(12).normal(size=(2, 5)))

    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0), np.random.default_rng(13).normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_gradient(
            lambda t: t.sum(axis=1, keepdims=True) * t,
            np.random.default_rng(14).normal(size=(3, 4)),
        )

    def test_mean(self):
        check_gradient(lambda t: t.mean(), np.random.default_rng(15).normal(size=(4, 2)))

    def test_take_rows(self):
        x = np.random.default_rng(16).normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])
        t = Tensor(x.copy(), requires_grad=True)
        t.take_rows(idx).sum().backward()
        expected = np.zeros_like(x)
        np.add.at(expected, idx, np.ones((4, 3)))
        np.testing.assert_allclose(t.grad, expected)

    def test_concat_grad(self):
        rng = np.random.default_rng(17)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        (concat([a, b], axis=1) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))


class TestBroadcasting:
    def test_bias_broadcast_backward(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros((1, 3)), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert s.grad == pytest.approx(4.0)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        y = x + x  # x used twice
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0]])

    def test_diamond_graph(self):
        x = Tensor(np.array([[3.0]]), requires_grad=True)
        a = x * 2.0
        b = x * 4.0
        (a + b).sum().backward()
        assert x.grad[0, 0] == pytest.approx(6.0)

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
            y = x * 2.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones((2,)), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_item_and_numpy(self):
        t = Tensor(5.0)
        assert t.item() == 5.0
        assert Tensor(np.ones((2, 2))).numpy().shape == (2, 2)

    def test_scalar_exponent_only(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestPropertyGradcheck:
    @settings(max_examples=25, deadline=None)
    @given(
        shape=matrices,
        seed=st.integers(0, 1000),
    )
    def test_composite_expression_gradient(self, shape, seed):
        """Random composite expressions have finite-difference-correct grads."""
        x = np.random.default_rng(seed).uniform(0.2, 1.5, size=shape)

        def op(t):
            return ((t * 2.0 + 1.0).sigmoid() * t.tanh() + t.relu()).sum(axis=0)

        check_gradient(op, x, atol=1e-4)
