"""Round-trip tests for detector persistence."""

import numpy as np
import pytest

from repro.augmentation.policy import Policy, UniformPolicy
from repro.augmentation.transformations import Transformation
from repro.constraints import functional_dependency, parse_denial_constraint
from repro.core import DetectorConfig, HoloDetect
from repro.embeddings import FastTextEmbedding
from repro.evaluation import make_split
from repro.persistence import load_detector, save_detector
from repro.persistence.detector_io import (
    decode_constraint,
    decode_policy,
    encode_constraint,
    encode_policy,
)
from repro.text.ngrams import NGramModel, SymbolicNGramModel


class TestComponentRoundtrips:
    def test_ngram_model(self):
        model = NGramModel(n=3).fit(["60612", "60614", "abc"])
        restored = NGramModel.from_state(model.to_state())
        for value in ("60612", "zzz", ""):
            assert restored.min_gram_probability(value) == model.min_gram_probability(value)

    def test_symbolic_ngram_model(self):
        model = SymbolicNGramModel(n=3).fit(["60612", "abc-1"])
        restored = SymbolicNGramModel.from_state(model.to_state())
        assert restored.min_gram_probability("99x99") == model.min_gram_probability("99x99")

    def test_fasttext(self):
        model = FastTextEmbedding(dim=6, epochs=1, rng=0).fit([["a", "b"], ["b", "c"]] * 5)
        restored = FastTextEmbedding.from_state(model.to_state())
        np.testing.assert_allclose(restored.vector("b"), model.vector("b"))
        np.testing.assert_allclose(
            restored.vector("unseen_word"), model.vector("unseen_word")
        )
        assert restored.nearest_neighbor_distance("a") == pytest.approx(
            model.nearest_neighbor_distance("a")
        )

    def test_unfitted_fasttext_rejected(self):
        with pytest.raises(RuntimeError):
            FastTextEmbedding().to_state()

    def test_constraint(self):
        for dc in (
            functional_dependency(["a", "b"], "c"),
            parse_denial_constraint("t1.x == 'IL' & t1.y != t2.y"),
        ):
            restored = decode_constraint(encode_constraint(dc))
            assert restored == dc

    def test_policy(self):
        policy = Policy.learn([("60612", "6x612"), ("ab", "axb")])
        restored = decode_policy(encode_policy(policy))
        assert set(restored.transformations) == set(policy.transformations)
        for t in policy.transformations:
            assert restored.probability(t) == pytest.approx(policy.probability(t))

    def test_uniform_policy_kind_preserved(self):
        policy = UniformPolicy([Transformation("a", "b"), Transformation("", "x")])
        restored = decode_policy(encode_policy(policy))
        assert isinstance(restored, UniformPolicy)


class TestDetectorRoundtrip:
    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.data import load_dataset

        bundle = load_dataset("hospital", num_rows=150, seed=3)
        split = make_split(bundle, 0.15, rng=0)
        detector = HoloDetect(DetectorConfig(epochs=8, embedding_dim=6, seed=0))
        detector.fit(bundle.dirty, split.training, bundle.constraints)
        return bundle, split, detector

    def test_predictions_identical_after_roundtrip(self, fitted, tmp_path):
        bundle, split, detector = fitted
        save_detector(detector, tmp_path / "model")
        restored = load_detector(tmp_path / "model", bundle.dirty)
        cells = split.test_cells[:200]
        original = detector.predict(cells)
        loaded = restored.predict(cells)
        np.testing.assert_allclose(loaded.probabilities, original.probabilities)

    def test_metadata_preserved(self, fitted, tmp_path):
        bundle, _, detector = fitted
        save_detector(detector, tmp_path / "model")
        restored = load_detector(tmp_path / "model", bundle.dirty)
        assert restored.augmented_count == detector.augmented_count
        assert set(restored.policy.transformations) == set(detector.policy.transformations)
        assert restored.config.epochs == detector.config.epochs
        assert restored._train_cells == detector._train_cells

    def test_default_prediction_scope_preserved(self, fitted, tmp_path):
        bundle, _, detector = fitted
        save_detector(detector, tmp_path / "model")
        restored = load_detector(tmp_path / "model", bundle.dirty)
        assert set(restored.predict().cells) == set(detector.predict().cells)

    def test_saved_files_exist_and_no_pickle(self, fitted, tmp_path):
        bundle, _, detector = fitted
        save_detector(detector, tmp_path / "model")
        assert (tmp_path / "model" / "state.json").exists()
        assert (tmp_path / "model" / "arrays.npz").exists()

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_detector(HoloDetect(), tmp_path / "nope")

    def test_version_check(self, fitted, tmp_path):
        import json

        bundle, _, detector = fitted
        save_detector(detector, tmp_path / "model")
        state_path = tmp_path / "model" / "state.json"
        state = json.loads(state_path.read_text())
        state["format_version"] = 999
        state_path.write_text(json.dumps(state))
        with pytest.raises(ValueError, match="version"):
            load_detector(tmp_path / "model", bundle.dirty)
