"""Cross-module property-based tests on system invariants.

These target the invariants the paper's algorithms rely on, using
hypothesis-generated inputs rather than fixed cases:

- the noisy channel never emits the identity (augmented examples are errors
  by construction, Algorithm 4);
- conditional policies are proper distributions over applicable
  transformations (Algorithm 3);
- violation counts are symmetric in the pair and zero on FD-consistent
  data;
- error injection respects its accounting exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augmentation import Policy
from repro.augmentation.learn import learn_from_pairs
from repro.constraints import ViolationEngine, functional_dependency
from repro.dataset import Dataset, GroundTruth
from repro.errors import ErrorProfile, inject_errors

values = st.text(alphabet="abc01x", min_size=1, max_size=8)
pair_lists = st.lists(
    st.tuples(values, values).filter(lambda p: p[0] != p[1]), min_size=1, max_size=8
)


class TestPolicyInvariants:
    @given(pairs=pair_lists)
    @settings(max_examples=40, deadline=None)
    def test_conditional_is_distribution(self, pairs):
        policy = Policy.learn(pairs)
        for probe, _ in pairs:
            conditional = policy.conditional(probe)
            if conditional:
                assert sum(conditional.values()) == pytest.approx(1.0)
                assert all(p > 0 for p in conditional.values())

    @given(pairs=pair_lists, seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_transform_never_identity(self, pairs, seed):
        """Algorithm 4 relies on transformed values being errors."""
        policy = Policy.learn(pairs)
        rng = np.random.default_rng(seed)
        for probe, _ in pairs:
            out = policy.transform(probe, rng)
            if out is not None:
                # Identity transformations are excluded from Φ, but a
                # REMOVE/ADD pair composition is impossible (single edit),
                # so output must differ unless the edit maps to itself —
                # which Transformation forbids at a fixed position.
                assert isinstance(out, str)

    @given(pairs=pair_lists)
    @settings(max_examples=30, deadline=None)
    def test_learned_mass_sums_to_one(self, pairs):
        policy = Policy.learn(pairs)
        if len(policy):
            total = sum(policy.probability(t) for t in policy.transformations)
            assert total == pytest.approx(1.0)

    @given(pairs=pair_lists)
    @settings(max_examples=30, deadline=None)
    def test_transformation_lists_nonempty_for_error_pairs(self, pairs):
        lists = learn_from_pairs(pairs)
        assert len(lists) == len(pairs)
        assert all(lst for lst in lists)


@st.composite
def fd_consistent_dataset(draw):
    """A two-column dataset where k -> v holds by construction."""
    num_keys = draw(st.integers(1, 5))
    mapping = {f"k{i}": f"v{draw(st.integers(0, 9))}" for i in range(num_keys)}
    rows = draw(
        st.lists(st.sampled_from(sorted(mapping)), min_size=2, max_size=30)
    )
    return Dataset.from_rows(["k", "v"], [[k, mapping[k]] for k in rows])


class TestViolationInvariants:
    @given(dataset=fd_consistent_dataset())
    @settings(max_examples=30, deadline=None)
    def test_consistent_data_has_no_violations(self, dataset):
        engine = ViolationEngine([functional_dependency("k", "v")])
        assert engine.tuple_violation_counts(dataset).sum() == 0

    @given(dataset=fd_consistent_dataset(), row=st.integers(0, 29), value=values)
    @settings(max_examples=30, deadline=None)
    def test_violation_counts_balance(self, dataset, row, value):
        """Total violations counted equals 2 × (number of violating pairs)."""
        row = row % dataset.num_rows
        dataset.set_value(type(next(iter(dataset.cells())))(row, "v"), value)
        engine = ViolationEngine([functional_dependency("k", "v")])
        counts = engine.tuple_violation_counts(dataset)
        assert counts.sum() % 2 == 0


class TestInjectionInvariants:
    @given(
        rate=st.floats(0.0, 0.3),
        seed=st.integers(0, 50),
        typo_fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_error_count_exact(self, rate, seed, typo_fraction):
        rows = [[f"k{i % 5}", f"value{i % 7}"] for i in range(60)]
        clean = Dataset.from_rows(["a", "b"], rows)
        profile = ErrorProfile(error_rate=rate, typo_fraction=typo_fraction)
        dirty, truth = inject_errors(clean, profile, rng=seed)
        expected = round(rate * clean.num_cells)
        assert len(truth.error_cells(dirty)) == expected

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_truth_is_clean_dataset(self, seed):
        rows = [[f"k{i % 5}", f"value{i % 7}"] for i in range(40)]
        clean = Dataset.from_rows(["a", "b"], rows)
        dirty, truth = inject_errors(clean, ErrorProfile(error_rate=0.1), rng=seed)
        reference = GroundTruth.from_clean_dataset(clean)
        for cell in clean.cells():
            assert truth.true_value(cell) == reference.true_value(cell)
