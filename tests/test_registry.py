"""Tests for the unified component registry (``repro.registry``)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.baselines import adapters
from repro.baselines.adapters import build_method, method_names
from repro.data import registry as data_registry
from repro.data.registry import DATASET_NAMES, load_dataset
from repro.errors import profiles
from repro.errors.bart import ErrorProfile
from repro.errors.profiles import profile_names, resolve_profile
from repro.features.pipeline import (
    ALL_MODEL_NAMES,
    FeaturizerContext,
    build_featurizer,
    build_pipeline,
    default_pipeline,
)
from repro.registry import (
    REGISTRY,
    ComponentError,
    Registry,
    make_config,
)

#: All 11 baseline-method keys of the paper's evaluation (§6.1 + ablations).
ALL_METHODS = (
    "holodetect", "aug", "superl", "semil", "activel", "resampling",
    "lr", "cv", "hc", "od", "fbi",
)


class TestRegistryCore:
    def test_kinds_cover_every_component_family(self):
        assert set(REGISTRY.kinds()) >= {
            "featurizer", "method", "error_profile", "dataset",
            "policy", "calibrator",
        }

    def test_duplicate_registration_rejected(self):
        registry = Registry()
        registry.add("kind", "key", lambda params: None)
        with pytest.raises(ComponentError, match="duplicate registration"):
            registry.add("kind", "key", lambda params: None)

    def test_registered_keys_may_not_contain_colon(self):
        registry = Registry()
        with pytest.raises(ComponentError, match="reserved"):
            registry.register("kind", "a:b")(lambda params: None)

    def test_unknown_key_lists_choices(self):
        with pytest.raises(ComponentError, match="choose from.*platt"):
            REGISTRY.entry("calibrator", "nope")

    def test_describe_carries_descriptions(self):
        rows = REGISTRY.describe("method")
        assert {r["key"] for r in rows} == set(ALL_METHODS)
        assert all(r["description"] for r in rows)

    def test_make_config_rejects_unknown_keys(self):
        @dataclass
        class Cfg:
            x: int = 1

        with pytest.raises(ComponentError, match=r"unknown parameters \['y'\].*valid keys: \['x'\]"):
            make_config(Cfg, {"y": 2}, "kind 'k'")

    def test_make_config_reraises_post_init_errors_with_context(self):
        @dataclass
        class Cfg:
            x: int = 1

            def __post_init__(self):
                if self.x < 0:
                    raise ValueError("x must be non-negative")

        with pytest.raises(ComponentError, match="kind 'k': x must be non-negative"):
            make_config(Cfg, {"x": -1}, "kind 'k'")


class TestMethodResolution:
    def test_all_eleven_methods_resolve(self):
        assert set(method_names()) == set(ALL_METHODS)
        for name in ALL_METHODS:
            assert callable(build_method(name))

    def test_unknown_method_is_actionable(self):
        with pytest.raises(ValueError, match="unknown method 'nope'; choose from"):
            build_method("nope")

    def test_bad_params_name_the_method(self):
        with pytest.raises(ValueError, match="method 'lr'"):
            build_method("lr", {"epochs": 3})

    def test_module_attr_method_reference(self):
        method = build_method("custom_components:flag_nothing_method")
        assert method(None, None, None) == set()


class TestFeaturizerResolution:
    def test_every_builtin_featurizer_resolves(self):
        ctx = FeaturizerContext(embedding_dim=4, embedding_epochs=1)
        for name in ALL_MODEL_NAMES + ("value_length", "token_frequency"):
            featurizer = build_featurizer(name, {}, ctx)
            assert featurizer.name == name

    def test_embedding_params_inherit_context_defaults(self):
        ctx = FeaturizerContext(embedding_dim=4, embedding_epochs=1)
        assert build_featurizer("char_embedding", {}, ctx).dim == 4
        assert build_featurizer("char_embedding", {"dim": 7}, ctx).dim == 7

    def test_unknown_param_is_actionable(self):
        with pytest.raises(ComponentError, match="unknown parameters \\['width'\\]"):
            build_featurizer("char_embedding", {"width": 9})

    def test_no_param_featurizers_reject_params(self):
        with pytest.raises(ComponentError, match="takes no parameters"):
            build_featurizer("column_id", {"dim": 2})

    def test_module_attr_featurizer_class(self, zip_dataset):
        featurizer = build_featurizer(
            "custom_components:ConstantFeaturizer", {"value": 3.0}
        )
        featurizer.fit(zip_dataset)
        from repro.features.base import CellBatch

        out = featurizer.transform_batch(
            CellBatch(list(zip_dataset.cells())[:4], zip_dataset)
        )
        assert out.shape == (4, 1) and np.all(out == 3.0)

    def test_module_attr_prebuilt_instance(self):
        featurizer = build_featurizer("custom_components:PREBUILT_FEATURIZER")
        assert featurizer.value == 2.5
        with pytest.raises(ComponentError, match="takes no parameters"):
            build_featurizer("custom_components:PREBUILT_FEATURIZER", {"value": 1})

    def test_module_attr_non_featurizer_rejected(self):
        with pytest.raises(ComponentError, match="lacks the Featurizer interface"):
            build_featurizer("custom_components:NOT_A_FEATURIZER")

    def test_malformed_and_missing_references(self):
        with pytest.raises(ComponentError, match="cannot import module"):
            build_featurizer("no_such_module:X")
        with pytest.raises(ComponentError, match="has no attribute"):
            build_featurizer("custom_components:Nothing")

    def test_custom_featurizer_in_full_pipeline(self, zip_dataset):
        ctx = FeaturizerContext(embedding_dim=4, embedding_epochs=1, rng=0)
        pipeline = build_pipeline(
            [
                "empirical_dist",
                ("custom_components:ConstantFeaturizer", {"value": 0.5}),
            ],
            ctx,
        )
        pipeline.fit(zip_dataset)
        cells = list(zip_dataset.cells())[:6]
        features = pipeline.transform(cells, zip_dataset)
        assert features.numeric.shape == (6, 2)

    def test_default_pipeline_unchanged_by_registry_refactor(self, zip_fd):
        pipe = default_pipeline([zip_fd], embedding_dim=4, rng=0)
        assert set(pipe.model_names) == set(ALL_MODEL_NAMES)
        with pytest.raises(ValueError, match="unknown model names"):
            default_pipeline(None, exclude=("no_such_model",))


class TestProfileResolution:
    def test_builtin_profiles_resolve(self):
        assert set(profile_names()) == {"native", "typos", "x-typos", "bart-mix", "swaps"}
        assert resolve_profile("native") is None
        assert resolve_profile("typos").typo_fraction == 1.0

    def test_preset_overrides(self):
        profile = resolve_profile("bart-mix", error_rate=0.2)
        assert profile.error_rate == 0.2 and profile.typo_fraction == 0.5

    def test_module_attr_profile(self):
        profile = resolve_profile("custom_components:heavy_typos", error_rate=0.3)
        assert isinstance(profile, ErrorProfile) and profile.error_rate == 0.3

    def test_adhoc_profile_needs_error_rate(self):
        with pytest.raises(ValueError, match="at least error_rate"):
            resolve_profile("mystery")


class TestDatasetResolution:
    def test_builtin_datasets_resolve(self):
        assert set(DATASET_NAMES) == {"hospital", "food", "soccer", "adult", "animal"}
        bundle = load_dataset("hospital", num_rows=30, seed=0)
        assert bundle.dirty.num_rows == 30

    def test_unknown_dataset_is_actionable(self):
        with pytest.raises(ValueError, match="unknown dataset 'nope'; choose from"):
            load_dataset("nope")

    def test_bad_rows_param(self):
        with pytest.raises(ValueError, match="num_rows must be a positive integer"):
            load_dataset("hospital", num_rows=-3)


class TestPolicyAndCalibratorResolution:
    def test_policy_components(self):
        from repro.augmentation.policy import Policy, UniformPolicy

        assert REGISTRY.create("policy", "learned", {}) is None
        wrapper = REGISTRY.create("policy", "uniform", {})
        learned = Policy.learn([("Chicago", "Cxcago")])
        assert isinstance(wrapper(learned), UniformPolicy)
        channel = REGISTRY.create("policy", "random-channel", {"seed": 3})
        assert isinstance(channel, Policy)

    def test_calibrator_components(self):
        from repro.core.calibration import PlattScaler

        platt = REGISTRY.create("calibrator", "platt", {"epochs": 50})
        assert isinstance(platt, PlattScaler) and platt.epochs == 50
        identity = REGISTRY.create("calibrator", "none", {})
        identity.fit(np.array([1.0, -1.0]), np.array([1.0, 0.0]))
        assert identity.a == 1.0 and identity.b == 0.0

    def test_calibrator_param_validation(self):
        with pytest.raises(ComponentError, match="lr must be positive"):
            REGISTRY.create("calibrator", "platt", {"lr": -1})


class TestDeprecatedNameMaps:
    """The pre-registry private name maps keep working behind a single
    DeprecationWarning, and stay equivalent to the registry contents."""

    def test_profiles_map(self):
        with pytest.warns(DeprecationWarning, match="PROFILES is deprecated"):
            legacy = profiles.PROFILES
        assert set(legacy) == set(profile_names())
        for name, profile in legacy.items():
            assert profile == resolve_profile(name)

    def test_profiles_map_via_package(self):
        import repro.errors

        with pytest.warns(DeprecationWarning, match="PROFILES is deprecated"):
            legacy = repro.errors.PROFILES
        assert set(legacy) == set(profile_names())

    def test_builders_map(self):
        with pytest.warns(DeprecationWarning, match="_BUILDERS is deprecated"):
            legacy = adapters._BUILDERS
        assert set(legacy) == set(method_names())
        # Old-style use still produces working MethodFn builders.
        assert callable(legacy["lr"]({}))

    def test_generators_map(self):
        with pytest.warns(DeprecationWarning, match="_GENERATORS is deprecated"):
            legacy = data_registry._GENERATORS
        assert set(legacy) == set(DATASET_NAMES)
        bundle = legacy["hospital"](num_rows=20, seed=1)
        assert bundle.dirty.num_rows == 20
        # Old→new equivalence: the legacy generator and the registry path
        # produce identical relations.
        assert (
            bundle.dirty.fingerprint()
            == load_dataset("hospital", num_rows=20, seed=1).dirty.fingerprint()
        )

    def test_unknown_module_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            profiles.NO_SUCH_THING
        with pytest.raises(AttributeError):
            adapters.NO_SUCH_THING
        with pytest.raises(AttributeError):
            data_registry.NO_SUCH_THING


class TestMatrixThroughRegistry:
    """Sweep specs resolve their axes through the registry, including
    module:attr references."""

    def test_matrix_accepts_module_attr_method_and_profile(self):
        from repro.evaluation.matrix import ScenarioMatrix

        matrix = ScenarioMatrix.from_dict(
            {
                "datasets": [{"name": "hospital", "rows": 40}],
                "error_profiles": [
                    {"name": "custom_components:heavy_typos", "error_rate": 0.25}
                ],
                "label_budgets": [0.2],
                "methods": ["custom_components:flag_nothing_method"],
                "trials": 1,
            }
        )
        specs = matrix.expand()
        assert len(specs) == 1

    def test_matrix_still_rejects_unknown_names(self):
        from repro.evaluation.matrix import MatrixSpecError, ScenarioMatrix

        with pytest.raises(MatrixSpecError, match="unknown dataset"):
            ScenarioMatrix.from_dict(
                {"datasets": ["nope"], "label_budgets": [0.1], "methods": ["lr"]}
            )
        with pytest.raises(MatrixSpecError, match="unknown method"):
            ScenarioMatrix.from_dict(
                {"datasets": ["hospital"], "label_budgets": [0.1], "methods": ["nope"]}
            )

    def test_module_attr_scenario_runs_end_to_end(self):
        from repro.evaluation.matrix import ScenarioSpec, run_scenario

        record = run_scenario(
            ScenarioSpec(
                dataset="hospital",
                rows=40,
                error_profile="custom_components:heavy_typos",
                error_params={"error_rate": 0.25},
                label_budget=0.2,
                method="custom_components:flag_nothing_method",
                trials=1,
            )
        )
        # The do-nothing method has recall 0 by construction.
        assert record["metrics"]["recall"] == 0.0


class TestLegacyWriteThrough:
    """Writes into the deprecated name maps register through to the
    registry — the pre-registry extension pattern keeps working."""

    def test_profiles_write_through(self):
        with pytest.warns(DeprecationWarning):
            legacy = profiles.PROFILES
        legacy["legacy-profile"] = ErrorProfile(error_rate=0.07)
        assert "legacy-profile" in profile_names()
        assert resolve_profile("legacy-profile").error_rate == 0.07
        with pytest.warns(DeprecationWarning):
            assert "legacy-profile" in profiles.PROFILES

    def test_builders_write_through(self):
        with pytest.warns(DeprecationWarning):
            legacy = adapters._BUILDERS

        def builder(params):
            return lambda bundle, split, rng: set()

        legacy["legacy-method"] = builder
        assert "legacy-method" in method_names()
        assert build_method("legacy-method")(None, None, None) == set()

    def test_generators_write_through(self):
        with pytest.warns(DeprecationWarning):
            legacy = data_registry._GENERATORS
        from repro.data.hospital import generate_hospital

        legacy["legacy-hospital"] = generate_hospital
        bundle = load_dataset("legacy-hospital", num_rows=20, seed=1)
        assert bundle.dirty.num_rows == 20

    def test_deletion_is_rejected(self):
        with pytest.warns(DeprecationWarning):
            legacy = profiles.PROFILES
        with pytest.raises(ComponentError, match="unsupported"):
            del legacy["typos"]
