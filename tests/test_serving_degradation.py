"""Serving-layer graceful degradation: admission control, per-fingerprint
circuit breakers, and the degraded health report.

Everything runs over in-memory streams (``feed_request``) with injectable
clocks — no sockets, no real sleeps.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.faults import RetryPolicy, inject, use_policy
from repro.serving.registry import DetectorRegistry, RegistryError
from repro.serving.server import DetectionServer, ServeConfig
from repro.serving.testing import feed_request


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture(autouse=True)
def fast_policy():
    sleeps: list[float] = []
    with use_policy(RetryPolicy(max_attempts=3, base_delay=0.01, sleep=sleeps.append)):
        yield


@pytest.fixture()
def corrupt_root(served_world, tmp_path):
    """A model root whose single save has a truncated state.json."""
    root = tmp_path / "models"
    shutil.copytree(served_world.model_root / "alpha", root / "alpha")
    state = root / "alpha" / "state.json"
    state.write_text(state.read_text(encoding="utf-8")[:200], encoding="utf-8")
    return root


def repair(served_world, corrupt_root) -> None:
    shutil.copyfile(
        served_world.model_root / "alpha" / "state.json",
        corrupt_root / "alpha" / "state.json",
    )


def http_request(path="/v1/detect", body=b"", method="POST") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: test\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def parse_response(raw: bytes) -> tuple[int, dict, dict]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, json.loads(body.decode("utf-8")), headers


def detect_body(served_world) -> bytes:
    dataset = served_world.bundle.dirty
    return json.dumps(
        {
            "schema": "repro.serve/v1",
            "fingerprint": served_world.fingerprint,
            "columns": list(dataset.attributes),
            "rows": [
                [dataset.column(a)[r] for a in dataset.attributes]
                for r in range(3)
            ],
        }
    ).encode("utf-8")


# --------------------------------------------------------------------------- #
# Registry-level circuit breaker
# --------------------------------------------------------------------------- #


class TestLoadCircuitBreaker:
    def make_registry(self, corrupt_root, threshold=2):
        clock = FakeClock()
        registry = DetectorRegistry(
            corrupt_root,
            capacity=4,
            breaker_threshold=threshold,
            breaker_cooldown=30.0,
            clock=clock,
        )
        return registry, clock

    def test_repeated_failures_trip_the_circuit(self, served_world, corrupt_root):
        registry, _ = self.make_registry(corrupt_root)
        for _ in range(2):
            with pytest.raises(RegistryError) as excinfo:
                registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
            assert excinfo.value.code == "corrupt_model"
        # Third request fails fast without touching the disk.
        failures_before = registry.stats.load_failures
        with pytest.raises(RegistryError) as excinfo:
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert excinfo.value.code == "circuit_open"
        assert excinfo.value.retry_after == pytest.approx(30.0)
        assert registry.stats.load_failures == failures_before
        assert registry.stats.fast_failures == 1
        assert registry.hot_fingerprints == []  # failures are never cached
        states = registry.breaker_states()
        assert list(states) == [served_world.fingerprint]
        assert states[served_world.fingerprint]["state"] == "open"

    def test_half_open_probe_heals_without_restart(self, served_world, corrupt_root):
        registry, clock = self.make_registry(corrupt_root)
        for _ in range(2):
            with pytest.raises(RegistryError):
                registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        repair(served_world, corrupt_root)
        # Before the cooldown lapses, still fast-failing despite the repair.
        with pytest.raises(RegistryError) as excinfo:
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert excinfo.value.code == "circuit_open"
        clock.now += 31.0
        detector = registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert detector is not None
        assert registry.breaker_states() == {}  # closed and clean again
        # And the healed entry serves from the hot pool now.
        assert registry.hot_fingerprints == [served_world.fingerprint]

    def test_failed_probe_reopens(self, served_world, corrupt_root):
        registry, clock = self.make_registry(corrupt_root)
        for _ in range(2):
            with pytest.raises(RegistryError):
                registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        clock.now += 31.0
        with pytest.raises(RegistryError) as excinfo:
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert excinfo.value.code == "corrupt_model"  # the probe ran, failed
        with pytest.raises(RegistryError) as excinfo:
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert excinfo.value.code == "circuit_open"  # fresh cooldown

    def test_transient_load_fault_is_retried_not_counted(
        self, served_world, tmp_path
    ):
        root = tmp_path / "models"
        shutil.copytree(served_world.model_root / "alpha", root / "alpha")
        registry = DetectorRegistry(root, capacity=4)
        with inject("serve.load=first:2:EIO"):
            detector = registry.acquire(
                served_world.fingerprint, served_world.bundle.dirty
            )
        assert detector is not None
        assert registry.stats.load_failures == 0
        assert registry.breaker_states() == {}


# --------------------------------------------------------------------------- #
# Server-level degradation
# --------------------------------------------------------------------------- #


class TestAdmissionControl:
    def test_overload_sheds_with_structured_503(self, served_world):
        server = DetectionServer(
            ServeConfig(
                model_root=served_world.model_root, max_inflight=1, retry_after=2.5
            )
        )
        server._inflight = 1  # the cap is reached: one request mid-flight
        status, payload, headers = parse_response(
            feed_request(server, http_request("/v1/health", method="GET"))
        )
        assert status == 503
        assert payload["kind"] == "error"
        assert payload["error"]["code"] == "overloaded"
        assert payload["error"]["retry_after"] == 2.5
        assert headers["retry-after"] == "2"  # integer delta-seconds
        assert server.requests_shed == 1
        server._inflight = 0
        status, payload, _ = parse_response(
            feed_request(server, http_request("/v1/health", method="GET"))
        )
        assert status == 200
        assert payload["shed"] == 1

    def test_inflight_gauge_returns_to_zero(self, served_world):
        server = DetectionServer(ServeConfig(model_root=served_world.model_root))
        feed_request(server, http_request("/v1/health", method="GET"))
        assert server._inflight == 0

    def test_config_validation(self, served_world):
        for bad in (
            dict(max_inflight=0),
            dict(retry_after=0),
            dict(breaker_threshold=0),
            dict(breaker_cooldown=0),
        ):
            with pytest.raises(ValueError):
                ServeConfig(model_root=served_world.model_root, **bad)


class TestServerCircuitMapping:
    def make_server(self, corrupt_root) -> DetectionServer:
        return DetectionServer(
            ServeConfig(
                model_root=corrupt_root,
                breaker_threshold=1,
                breaker_cooldown=60.0,
            )
        )

    def test_open_circuit_maps_to_503_with_retry_after(
        self, served_world, corrupt_root
    ):
        server = self.make_server(corrupt_root)
        body = detect_body(served_world)
        status, payload, _ = parse_response(
            feed_request(server, http_request(body=body))
        )
        assert status == 500
        assert payload["error"]["code"] == "corrupt_model"
        status, payload, headers = parse_response(
            feed_request(server, http_request(body=body))
        )
        assert status == 503
        assert payload["error"]["code"] == "circuit_open"
        assert payload["error"]["retry_after"] == pytest.approx(60.0, abs=1.0)
        assert headers["retry-after"] == "60"

    def test_health_reports_degraded_components(self, served_world, corrupt_root):
        server = self.make_server(corrupt_root)
        status, payload, _ = parse_response(
            feed_request(server, http_request("/v1/health", method="GET"))
        )
        assert status == 200 and payload["status"] == "ok"
        assert payload["components"] == {}
        feed_request(server, http_request(body=detect_body(served_world)))
        status, payload, _ = parse_response(
            feed_request(server, http_request("/v1/health", method="GET"))
        )
        assert status == 200  # health itself always answers
        assert payload["status"] == "degraded"
        circuits = payload["components"]["circuits"]
        assert list(circuits) == [served_world.fingerprint]
        assert circuits[served_world.fingerprint]["state"] == "open"

    def test_health_recovers_after_repair(self, served_world, corrupt_root):
        clock = FakeClock()
        server = self.make_server(corrupt_root)
        server.registry.clock = clock
        body = detect_body(served_world)
        feed_request(server, http_request(body=body))  # trips the breaker
        repair(served_world, corrupt_root)
        clock.now += 61.0
        status, payload, _ = parse_response(
            feed_request(server, http_request(body=body))
        )
        assert status == 200
        status, payload, _ = parse_response(
            feed_request(server, http_request("/v1/health", method="GET"))
        )
        assert payload["status"] == "ok"
        assert payload["components"] == {}
