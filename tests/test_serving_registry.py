"""Registry tests: fingerprint index, prefix routing, LRU pool, corruption.

The serving layer's correctness depends on the registry's contracts:
fingerprints resolve like git object ids, hot entries are true LRU, tenant
checkouts are private instances, and a corrupt saved-model directory is an
error *response* — never a cached poisoned entry, never a dead registry.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.persistence import (
    detector_fingerprint,
    detector_index,
    load_detector,
    load_detector_by_fingerprint,
)
from repro.serving.registry import DetectorRegistry, RegistryError, RegistryStats
from repro.spec import MIN_FINGERPRINT_PREFIX, SpecError, resolve_fingerprint


class TestResolveFingerprint:
    FP_A = "aabbcc" + "0" * 58
    FP_B = "aabbdd" + "1" * 58
    KNOWN = [FP_A, FP_B]

    def test_full_match(self):
        assert resolve_fingerprint(self.FP_A, self.KNOWN) == self.FP_A

    def test_unique_prefix(self):
        assert resolve_fingerprint("aabbcc", self.KNOWN) == self.FP_A
        assert resolve_fingerprint(self.FP_B[:20], self.KNOWN) == self.FP_B

    def test_too_short_prefix_rejected(self):
        with pytest.raises(SpecError, match="too short"):
            resolve_fingerprint("aabb", self.KNOWN)
        assert MIN_FINGERPRINT_PREFIX == 6

    def test_unknown_prefix_names_candidates(self):
        with pytest.raises(SpecError, match="unknown spec fingerprint"):
            resolve_fingerprint("deadbeef", self.KNOWN)

    def test_ambiguous_six_char_prefix(self):
        shared = ["abcdef" + "0" * 58, "abcdef" + "1" * 58]
        with pytest.raises(SpecError, match="ambiguous"):
            resolve_fingerprint("abcdef", shared)

    def test_empty_or_non_string_rejected(self):
        with pytest.raises(SpecError):
            resolve_fingerprint("", self.KNOWN)
        with pytest.raises(SpecError):
            resolve_fingerprint(None, self.KNOWN)  # type: ignore[arg-type]


class TestDetectorIndex:
    def test_fingerprint_from_sidecar(self, served_world):
        assert (
            detector_fingerprint(served_world.model_root / "alpha")
            == served_world.fingerprint
        )

    def test_fingerprint_recomputed_without_sidecar(self, served_world, tmp_path):
        copy = tmp_path / "nosidecar"
        shutil.copytree(served_world.model_root / "alpha", copy)
        (copy / "spec.json").unlink()
        assert detector_fingerprint(copy) == served_world.fingerprint

    def test_fingerprint_none_for_unreadable(self, tmp_path):
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "state.json").write_text("{nope", encoding="utf-8")
        assert detector_fingerprint(broken) is None
        assert detector_fingerprint(tmp_path / "missing") is None

    def test_index_maps_fingerprints_to_dirs(self, served_world):
        index = detector_index(served_world.model_root)
        assert index == {
            served_world.fingerprint: served_world.model_root / "alpha",
            served_world.fingerprint_b: served_world.model_root / "beta",
        }

    def test_index_skips_non_model_entries(self, served_world, tmp_path):
        root = tmp_path / "root"
        shutil.copytree(served_world.model_root / "alpha", root / "model")
        (root / "not-a-model").mkdir()
        (root / "stray.txt").write_text("x", encoding="utf-8")
        assert set(detector_index(root).values()) == {root / "model"}

    def test_index_duplicate_fingerprint_last_dir_wins(self, served_world, tmp_path):
        root = tmp_path / "root"
        shutil.copytree(served_world.model_root / "alpha", root / "aaa")
        shutil.copytree(served_world.model_root / "alpha", root / "zzz")
        assert detector_index(root)[served_world.fingerprint] == root / "zzz"

    def test_index_of_missing_root_is_empty(self, tmp_path):
        assert detector_index(tmp_path / "nowhere") == {}

    def test_load_by_fingerprint_prefix(self, served_world):
        detector = load_detector_by_fingerprint(
            served_world.model_root,
            served_world.fingerprint[:12],
            served_world.bundle.dirty,
        )
        assert detector.spec.fingerprint() == served_world.fingerprint


class TestDetectorRegistry:
    @pytest.fixture()
    def registry(self, served_world) -> DetectorRegistry:
        return DetectorRegistry(served_world.model_root, capacity=8)

    def test_lists_servable_fingerprints(self, served_world, registry):
        assert registry.fingerprints == sorted(
            [served_world.fingerprint, served_world.fingerprint_b]
        )
        assert registry.hot_fingerprints == []

    def test_acquire_loads_once_then_hits(self, served_world, registry):
        dataset = served_world.bundle.dirty
        first = registry.acquire(served_world.fingerprint, dataset)
        second = registry.acquire(served_world.fingerprint[:12], dataset)
        assert first is second
        assert registry.stats.loads == 1
        assert registry.stats.hits == 1
        assert registry.hot_fingerprints == [served_world.fingerprint]

    def test_acquire_clears_training_cell_exclusion(self, served_world, registry):
        detector = registry.acquire(
            served_world.fingerprint, served_world.bundle.dirty
        )
        assert detector._train_cells == set()

    def test_acquire_reattaches_dataset_on_hit(self, served_world, registry):
        dataset = served_world.bundle.dirty
        other = served_world.bundle.clean
        registry.acquire(served_world.fingerprint, dataset)
        detector = registry.acquire(served_world.fingerprint, other)
        assert detector._dataset is other

    def test_lru_eviction_at_capacity(self, served_world):
        registry = DetectorRegistry(served_world.model_root, capacity=1)
        dataset = served_world.bundle.dirty
        registry.acquire(served_world.fingerprint, dataset)
        registry.acquire(served_world.fingerprint_b, dataset)
        assert registry.hot_fingerprints == [served_world.fingerprint_b]
        assert registry.stats.evictions == 1
        # The evicted model reloads cleanly from disk.
        registry.acquire(served_world.fingerprint, dataset)
        assert registry.hot_fingerprints == [served_world.fingerprint]
        assert registry.stats.loads == 3

    def test_lru_order_follows_use(self, served_world, registry):
        dataset = served_world.bundle.dirty
        registry.acquire(served_world.fingerprint, dataset)
        registry.acquire(served_world.fingerprint_b, dataset)
        registry.acquire(served_world.fingerprint, dataset)  # refresh A
        assert registry.hot_fingerprints == [
            served_world.fingerprint_b,
            served_world.fingerprint,
        ]

    def test_checkout_is_private_instance(self, served_world, registry):
        dataset = served_world.bundle.dirty
        hot = registry.acquire(served_world.fingerprint, dataset)
        private = registry.checkout(served_world.fingerprint, dataset)
        assert private is not hot
        assert registry.stats.checkouts == 1
        # Checkouts never enter the LRU.
        assert registry.hot_fingerprints == [served_world.fingerprint]

    def test_resolve_rescans_for_models_saved_after_init(
        self, served_world, tmp_path
    ):
        root = tmp_path / "growing"
        root.mkdir()
        registry = DetectorRegistry(root, capacity=4)
        assert registry.fingerprints == []
        shutil.copytree(served_world.model_root / "alpha", root / "alpha")
        assert registry.resolve(served_world.fingerprint[:12]) == served_world.fingerprint

    def test_unknown_fingerprint_error_code(self, registry):
        with pytest.raises(RegistryError) as excinfo:
            registry.resolve("deadbeefdead")
        assert excinfo.value.code == "unknown_fingerprint"

    def test_ambiguous_fingerprint_error_code(
        self, served_world, registry, monkeypatch
    ):
        # Real SHA-256 fingerprints never collide on a 6-char prefix in a
        # two-model fixture, so fake the index (and pin the rescan-on-miss
        # path so resolve sees the ambiguity twice).
        registry._index = {
            "abcdef" + "0" * 58: served_world.model_root / "alpha",
            "abcdef" + "1" * 58: served_world.model_root / "beta",
        }
        monkeypatch.setattr(
            registry, "refresh_index", lambda: dict(registry._index)
        )
        with pytest.raises(RegistryError) as excinfo:
            registry.resolve("abcdef")
        assert excinfo.value.code == "ambiguous_fingerprint"

    def test_evict(self, served_world, registry):
        dataset = served_world.bundle.dirty
        assert registry.evict(served_world.fingerprint) is False  # not hot yet
        registry.acquire(served_world.fingerprint, dataset)
        assert registry.evict(served_world.fingerprint[:12]) is True
        assert registry.hot_fingerprints == []
        assert registry.evict("deadbeefdead") is False  # unknown → no raise

    def test_capacity_must_be_positive(self, served_world):
        with pytest.raises(ValueError, match="capacity"):
            DetectorRegistry(served_world.model_root, capacity=0)

    def test_stats_dict_keys(self):
        assert RegistryStats().as_dict() == {
            "hits": 0, "loads": 0, "evictions": 0,
            "load_failures": 0, "checkouts": 0, "fast_failures": 0,
        }


class TestCorruptModels:
    @pytest.fixture()
    def corrupt_root(self, served_world, tmp_path):
        """A model root whose single save has a truncated state.json."""
        root = tmp_path / "models"
        shutil.copytree(served_world.model_root / "alpha", root / "alpha")
        state = root / "alpha" / "state.json"
        state.write_text(state.read_text(encoding="utf-8")[:200], encoding="utf-8")
        return root

    def test_corrupt_load_raises_and_counts(self, served_world, corrupt_root):
        registry = DetectorRegistry(corrupt_root, capacity=4)
        with pytest.raises(RegistryError) as excinfo:
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert excinfo.value.code == "corrupt_model"
        assert registry.stats.load_failures == 1

    def test_corrupt_load_never_poisons_the_pool(self, served_world, corrupt_root):
        registry = DetectorRegistry(corrupt_root, capacity=4)
        for _ in range(3):
            with pytest.raises(RegistryError):
                registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert registry.hot_fingerprints == []
        assert registry.stats.load_failures == 3

    def test_repairing_the_directory_heals_without_restart(
        self, served_world, corrupt_root
    ):
        registry = DetectorRegistry(corrupt_root, capacity=4)
        with pytest.raises(RegistryError):
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        shutil.copyfile(
            served_world.model_root / "alpha" / "state.json",
            corrupt_root / "alpha" / "state.json",
        )
        detector = registry.acquire(
            served_world.fingerprint, served_world.bundle.dirty
        )
        assert registry.hot_fingerprints == [served_world.fingerprint]
        assert detector.spec.fingerprint() == served_world.fingerprint

    def test_missing_arrays_are_corrupt_not_fatal(self, served_world, tmp_path):
        root = tmp_path / "models"
        shutil.copytree(served_world.model_root / "alpha", root / "alpha")
        state_path = root / "alpha" / "state.json"
        state = json.loads(state_path.read_text(encoding="utf-8"))
        removed = next(iter(state))
        state.pop(removed)
        state_path.write_text(json.dumps(state), encoding="utf-8")
        registry = DetectorRegistry(root, capacity=4)
        with pytest.raises(RegistryError) as excinfo:
            registry.acquire(served_world.fingerprint, served_world.bundle.dirty)
        assert excinfo.value.code == "corrupt_model"


class TestSavedDetectorStillLoadsDirectly:
    def test_load_detector_predictions_match_fitted(self, served_world):
        """The serving fixtures save a real fitted detector: loading it back
        reproduces the fitted detector's probabilities exactly."""
        dataset = served_world.bundle.dirty
        loaded = load_detector(served_world.model_root / "alpha", dataset)
        cells = list(dataset.cells())
        direct = served_world.detector.predict(cells)
        reloaded = loaded.predict(cells)
        assert list(map(float, direct.probabilities)) == list(
            map(float, reloaded.probabilities)
        )
