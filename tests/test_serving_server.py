"""Server tests: routes, tenants, concurrency equivalence, fault injection.

Three layers of harness from :mod:`repro.serving.testing`:

- ``feed_request`` drives the connection handler over in-memory streams for
  protocol-level tests (malformed requests, oversized bodies) with no ports;
- :class:`InProcessServer` + :class:`ServeClient` exercise the real socket
  path, including thread-pool concurrency;
- :class:`RawConnection` plays the misbehaving client (slow, vanishing).

The load-bearing assertions are the *bit-identity* ones: concurrent,
coalesced, and binary-transported responses must equal the sequential
single-client answer exactly — which in turn equals a direct
``HoloDetect``/``DetectionSession`` computation on a freshly loaded model.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.dataset.table import Cell
from repro.persistence import load_detector
from repro.serving import (
    SERVE_SCHEMA,
    ServeClient,
    ServeClientError,
    ServeConfig,
    probabilities_of,
)
from repro.serving.server import DetectionServer
from repro.serving.testing import InProcessServer, RawConnection, feed_request

# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


@pytest.fixture()
def server(served_world, tmp_path):
    config = ServeConfig(
        model_root=served_world.model_root,
        artifact_root=tmp_path / "artifacts",
        batch_window=0.05,  # generous window so threaded tests coalesce
    )
    with InProcessServer(config) as harness:
        yield harness


@pytest.fixture()
def client(server) -> ServeClient:
    return ServeClient(server.host, server.port)


def fresh_baseline(served_world, dataset=None):
    """A freshly loaded detector, configured exactly as the server loads it."""
    dataset = dataset if dataset is not None else served_world.bundle.dirty
    detector = load_detector(served_world.model_root / "alpha", dataset)
    detector._train_cells = set()
    return detector


def served_probabilities(response) -> dict[tuple[int, str], float]:
    cells = probabilities_of(response)
    assert cells, "response carried no cells"
    return cells


def direct_probabilities(detector, cells) -> dict[tuple[int, str], float]:
    predictions = detector.predict(list(cells))
    return {
        (cell.row, cell.attr): round(float(p), 6)
        for cell, p in zip(predictions.cells, predictions.probabilities)
    }


# --------------------------------------------------------------------- #
# Routes and stateless detection
# --------------------------------------------------------------------- #


class TestBasics:
    def test_health(self, served_world, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema"] == SERVE_SCHEMA
        assert health["models"] == 2
        assert health["hot"] == 0

    def test_registry_endpoint(self, served_world, client):
        info = client.registry()
        assert info["fingerprints"] == sorted(
            [served_world.fingerprint, served_world.fingerprint_b]
        )
        assert info["hot"] == []
        assert info["tenants"] == []
        assert set(info["registry"]) == {
            "hits", "loads", "evictions", "load_failures", "checkouts",
            "fast_failures",
        }
        assert set(info["batcher"]) == {
            "requests", "batches", "coalesced_requests", "max_batch_cells",
        }

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.request("GET", "/v2/nothing")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_route"

    def test_method_not_allowed_405(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.request("POST", "/v1/health", {"schema": SERVE_SCHEMA})
        assert excinfo.value.status == 405
        assert excinfo.value.code == "method_not_allowed"

    def test_stateless_detect_matches_direct_predict(self, served_world, client):
        dataset = served_world.bundle.dirty
        response = client.detect(served_world.fingerprint, dataset=dataset)
        assert response["kind"] == "detect"
        assert response["fingerprint"] == served_world.fingerprint
        assert response["report"]["scored_cells"] == dataset.num_rows * len(
            dataset.attributes
        )
        baseline = fresh_baseline(served_world)
        assert served_probabilities(response) == direct_probabilities(
            baseline, dataset.cells()
        )

    def test_fingerprint_prefix_resolves_to_full(self, served_world, client):
        response = client.detect(
            served_world.fingerprint[:8], dataset=served_world.bundle.dirty
        )
        assert response["fingerprint"] == served_world.fingerprint

    def test_threshold_controls_flagging(self, served_world, client):
        dataset = served_world.bundle.dirty
        everything = client.detect(
            served_world.fingerprint, dataset=dataset, threshold=0.0
        )
        report = everything["report"]
        assert report["flagged_cells"] == report["scored_cells"]
        nothing = client.detect(
            served_world.fingerprint, dataset=dataset, threshold=1.1
        )
        assert nothing["report"]["flagged_cells"] == 0

    def test_include_cells_false_drops_cell_list(self, served_world, client):
        response = client.detect(
            served_world.fingerprint,
            dataset=served_world.bundle.dirty,
            include_cells=False,
        )
        assert "cells" not in response["report"]
        assert response["report"]["scored_cells"] > 0

    def test_unknown_fingerprint_404(self, served_world, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.detect("deadbeefdeadbeef", dataset=served_world.bundle.dirty)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_fingerprint"

    def test_short_prefix_404(self, served_world, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(
                served_world.fingerprint[:4], dataset=served_world.bundle.dirty
            )
        assert excinfo.value.status == 404

    def test_detect_without_relation_400(self, served_world, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(served_world.fingerprint)
        assert excinfo.value.status == 400

    def test_detect_bad_cells_400(self, served_world, client):
        dataset = served_world.bundle.dirty
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(
                served_world.fingerprint,
                dataset=dataset,
                cells=[(0, "NoSuchAttribute")],
            )
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(
                served_world.fingerprint,
                dataset=dataset,
                cells=[(dataset.num_rows + 5, dataset.attributes[0])],
            )
        assert excinfo.value.status == 400

    def test_binary_transport_bit_identical_to_json(self, served_world, server):
        dataset = served_world.bundle.dirty
        json_client = ServeClient(server.host, server.port)
        binary_client = ServeClient(server.host, server.port, binary=True)
        a = json_client.detect(served_world.fingerprint, dataset=dataset)
        b = binary_client.detect(served_world.fingerprint, dataset=dataset)
        assert served_probabilities(a) == served_probabilities(b)
        assert a["report"]["cells"] == b["report"]["cells"]

    def test_repeated_requests_identical(self, served_world, client):
        dataset = served_world.bundle.dirty
        first = client.detect(served_world.fingerprint, dataset=dataset)
        second = client.detect(served_world.fingerprint, dataset=dataset)
        assert first["report"]["cells"] == second["report"]["cells"]


# --------------------------------------------------------------------- #
# Tenants and rescoring
# --------------------------------------------------------------------- #


def register(client, served_world, tenant="acme"):
    return client.detect(
        served_world.fingerprint, dataset=served_world.bundle.dirty, tenant=tenant
    )


class TestTenants:
    def test_register_then_subset_detect(self, served_world, client):
        response = register(client, served_world)
        assert response["tenant"] == "acme"
        dataset = served_world.bundle.dirty
        subset = [(0, dataset.attributes[0]), (3, dataset.attributes[2])]
        answer = client.detect(tenant="acme", cells=subset)
        probabilities = served_probabilities(answer)
        assert set(probabilities) == {(r, a) for r, a in subset}
        baseline = fresh_baseline(served_world)
        expected = direct_probabilities(
            baseline, [Cell(r, a) for r, a in subset]
        )
        assert probabilities == expected

    def test_whole_relation_view_matches_stateless(self, served_world, client):
        register(client, served_world)
        tenant_view = client.detect(tenant="acme")
        stateless = client.detect(
            served_world.fingerprint, dataset=served_world.bundle.dirty
        )
        assert served_probabilities(tenant_view) == served_probabilities(stateless)

    def test_subset_without_registration_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(tenant="ghost", cells=[(0, "x")])
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_tenant"

    def test_invalid_tenant_name_400(self, served_world, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(
                served_world.fingerprint,
                dataset=served_world.bundle.dirty,
                tenant="not/ok",
            )
        assert excinfo.value.status == 400

    def test_tenant_fingerprint_mismatch_409(self, served_world, client):
        register(client, served_world)
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(
                served_world.fingerprint_b, tenant="acme", cells=[(0, "x")]
            )
        assert excinfo.value.status == 409
        assert excinfo.value.code == "tenant_fingerprint_mismatch"

    def test_rescore_matches_direct_session(self, served_world, client):
        register(client, served_world)
        dataset = served_world.bundle.dirty
        attr = dataset.attributes[1]
        edits = {Cell(2, attr): "Replacement Value"}
        response = client.rescore("acme", edits)
        assert response["kind"] == "rescore"
        assert response["applied_edits"] == 1
        assert response["rescored_cells"] > 0
        from repro.core.detector import DetectionSession

        baseline = fresh_baseline(served_world)
        session = DetectionSession(baseline, cells=list(dataset.cells()))
        session.apply(dict(edits))
        expected = {
            (cell.row, cell.attr): round(float(p), 6)
            for cell, p in zip(
                session.predictions.cells, session.predictions.probabilities
            )
        }
        assert served_probabilities(response) == expected

    def test_rescore_refresh_rescores_everything(self, served_world, client):
        register(client, served_world)
        dataset = served_world.bundle.dirty
        response = client.rescore(
            "acme",
            [{"row": 0, "attribute": dataset.attributes[0], "value": "zz"}],
            refresh=True,
        )
        assert response["refreshed"] is True
        assert response["rescored_cells"] == dataset.num_rows * len(
            dataset.attributes
        )

    def test_tenant_isolation(self, served_world, client):
        register(client, served_world, tenant="acme")
        register(client, served_world, tenant="globex")
        before = served_probabilities(client.detect(tenant="globex"))
        dataset = served_world.bundle.dirty
        client.rescore(
            "acme",
            [{"row": 0, "attribute": dataset.attributes[0], "value": "MUTATED"}],
        )
        after = served_probabilities(client.detect(tenant="globex"))
        assert before == after

    def test_rescore_unknown_tenant_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.rescore("ghost", [{"row": 0, "attribute": "x", "value": "y"}])
        assert excinfo.value.status == 404

    def test_rescore_bad_edits_400(self, served_world, client):
        register(client, served_world)
        for edits in (
            [],
            [{"row": "0", "attribute": "x", "value": "y"}],
            [{"row": 0, "attribute": "NoSuchAttribute", "value": "y"}],
            [{"row": 10**6, "attribute": served_world.bundle.dirty.attributes[0],
              "value": "y"}],
        ):
            with pytest.raises(ServeClientError) as excinfo:
                client.rescore("acme", edits)
            assert excinfo.value.status == 400
        # Non-object edit entries are rejected by the server itself (the
        # client refuses to encode them, so go through the raw route).
        with pytest.raises(ServeClientError) as excinfo:
            client.request(
                "POST",
                "/v1/rescore",
                {"schema": SERVE_SCHEMA, "tenant": "acme", "edits": ["nope"]},
            )
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_edit"

    def test_evict_tenant_and_model(self, served_world, client):
        register(client, served_world)
        client.detect(served_world.fingerprint, dataset=served_world.bundle.dirty)
        response = client.evict(
            fingerprint=served_world.fingerprint, tenant="acme"
        )
        assert response["evicted_model"] is True
        assert response["evicted_tenant"] is True
        assert response["hot"] == []
        with pytest.raises(ServeClientError) as excinfo:
            client.detect(tenant="acme", cells=[(0, "x")])
        assert excinfo.value.status == 404

    def test_evicted_model_reloads_cleanly(self, served_world, client):
        dataset = served_world.bundle.dirty
        before = served_probabilities(
            client.detect(served_world.fingerprint, dataset=dataset)
        )
        client.evict(fingerprint=served_world.fingerprint)
        after = served_probabilities(
            client.detect(served_world.fingerprint, dataset=dataset)
        )
        assert before == after
        stats = client.registry()["registry"]
        assert stats["loads"] == 2
        assert stats["evictions"] == 0  # explicit evict, not LRU pressure

    def test_evict_requires_a_target(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.evict()
        assert excinfo.value.status == 400


# --------------------------------------------------------------------- #
# Concurrency: bit-identity under parallel clients
# --------------------------------------------------------------------- #


class TestConcurrency:
    def test_concurrent_stateless_detects_bit_identical(
        self, served_world, server
    ):
        dataset = served_world.bundle.dirty
        client = ServeClient(server.host, server.port)
        sequential = client.detect(served_world.fingerprint, dataset=dataset)
        expected = sequential["report"]["cells"]

        def worker(_):
            return ServeClient(server.host, server.port).detect(
                served_world.fingerprint, dataset=dataset
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(worker, range(6)))
        for response in responses:
            assert response["report"]["cells"] == expected

    def test_concurrent_subset_detects_coalesce_bit_identical(
        self, served_world, server
    ):
        dataset = served_world.bundle.dirty
        client = ServeClient(server.host, server.port)
        register(client, served_world)
        attributes = dataset.attributes
        queries = [
            [(row, attributes[(row + k) % len(attributes)]) for k in range(3)]
            for row in range(8)
        ]
        sequential = [
            served_probabilities(client.detect(tenant="acme", cells=q))
            for q in queries
        ]
        barrier = threading.Barrier(len(queries))

        def worker(query):
            barrier.wait()  # land inside one coalescing window
            return served_probabilities(
                ServeClient(server.host, server.port).detect(
                    tenant="acme", cells=query
                )
            )

        with ThreadPoolExecutor(max_workers=len(queries)) as pool:
            concurrent = list(pool.map(worker, queries))
        assert concurrent == sequential
        batcher = client.registry()["batcher"]
        assert batcher["coalesced_requests"] > 0, (
            "concurrent subset requests never merged into one scoring pass"
        )

    def test_interleaved_detect_rescore_same_tenant(self, served_world, server):
        dataset = served_world.bundle.dirty
        client = ServeClient(server.host, server.port)
        register(client, served_world)
        attr = dataset.attributes[0]
        query = [(row, attr) for row in range(dataset.num_rows)]
        pre = served_probabilities(client.detect(tenant="acme", cells=query))
        edits = [{"row": 1, "attribute": attr, "value": "Interleaved Edit"}]

        results: dict[str, object] = {}

        def detect_worker(tag):
            response = ServeClient(server.host, server.port).detect(
                tenant="acme", cells=query
            )
            results[tag] = served_probabilities(response)

        def rescore_worker():
            results["rescore"] = ServeClient(server.host, server.port).rescore(
                "acme", edits
            )

        threads = [
            threading.Thread(target=detect_worker, args=(f"detect-{i}",))
            for i in range(4)
        ]
        threads.insert(2, threading.Thread(target=rescore_worker))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        post = served_probabilities(client.detect(tenant="acme", cells=query))

        # Every interleaved detect saw a consistent snapshot: exactly the
        # pre-edit or the post-edit probabilities, never a mix.
        for tag, probabilities in results.items():
            if tag == "rescore":
                continue
            assert probabilities in (pre, post), (
                f"{tag} observed a torn snapshot during a concurrent rescore"
            )

        # And the final state matches a direct sequential session replay.
        from repro.core.detector import DetectionSession

        baseline = fresh_baseline(served_world)
        session = DetectionSession(baseline, cells=list(dataset.cells()))
        session.apply({Cell(1, attr): "Interleaved Edit"})
        expected_post = {
            (row, attr): round(
                float(
                    session.predictions.probabilities[
                        session.predictions.cells.index(Cell(row, attr))
                    ]
                ),
                6,
            )
            for row in range(dataset.num_rows)
        }
        assert post == expected_post

    def test_concurrent_tenant_registrations_isolated(self, served_world, server):
        names = [f"tenant{i}" for i in range(4)]

        def worker(name):
            client = ServeClient(server.host, server.port)
            register(client, served_world, tenant=name)
            return name, served_probabilities(client.detect(tenant=name))

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = dict(pool.map(worker, names))
        first = results[names[0]]
        for name in names[1:]:
            assert results[name] == first
        client = ServeClient(server.host, server.port)
        assert client.registry()["tenants"] == sorted(names)


# --------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------- #


def protocol_server(served_world) -> DetectionServer:
    """An unstarted server for in-memory protocol tests (no sockets)."""
    return DetectionServer(ServeConfig(model_root=served_world.model_root))


def http_request(path="/v1/detect", body=b"", method="POST",
                 content_type="application/json") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: test\r\nContent-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def parse_response(raw: bytes) -> tuple[int, dict]:
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body.decode("utf-8"))


class TestFaultInjection:
    def test_bad_json_body_400(self, served_world):
        server = protocol_server(served_world)
        status, payload = parse_response(
            feed_request(server, http_request(body=b"{nope"))
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_wrong_schema_400(self, served_world):
        server = protocol_server(served_world)
        body = json.dumps({"schema": "repro.serve/v0"}).encode()
        status, payload = parse_response(
            feed_request(server, http_request(body=body))
        )
        assert status == 400
        assert "repro.serve/v1" in payload["error"]["message"]

    def test_malformed_request_line_400(self, served_world):
        server = protocol_server(served_world)
        status, payload = parse_response(
            feed_request(server, b"NOT A VALID REQUEST\r\n\r\n")
        )
        assert status == 400

    def test_binary_content_type_with_json_bytes_400(self, served_world):
        from repro.serving.wire import unpack

        server = protocol_server(served_world)
        raw = feed_request(
            server,
            http_request(
                body=b'{"schema": "repro.serve/v1"}',
                content_type="application/x-repro-pack",
            ),
        )
        # The error answer is negotiated to the request's (binary) format.
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b" 400 " in head.split(b"\r\n", 1)[0]
        payload = unpack(body)
        assert payload["error"]["code"] == "bad_request"

    def test_oversized_payload_413(self, served_world):
        server = DetectionServer(
            ServeConfig(model_root=served_world.model_root, max_body=1024)
        )
        body = b"x" * 2048
        status, payload = parse_response(feed_request(server, http_request(body=body)))
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_too_many_headers_400(self, served_world):
        server = protocol_server(served_world)
        headers = "".join(f"X-Pad-{i}: {i}\r\n" for i in range(150))
        raw = (
            "POST /v1/detect HTTP/1.1\r\n" + headers + "\r\n"
        ).encode()
        status, payload = parse_response(feed_request(server, raw))
        assert status == 400

    def test_error_counters_increment(self, served_world):
        server = protocol_server(served_world)
        feed_request(server, http_request(body=b"{nope"))
        assert server.requests_handled == 1
        assert server.errors_returned == 1

    def test_slow_client_times_out_408(self, served_world, tmp_path):
        config = ServeConfig(
            model_root=served_world.model_root, read_timeout=0.3
        )
        with InProcessServer(config) as harness:
            connection = RawConnection(harness.host, harness.port, timeout=10)
            try:
                # Declare a body, never deliver it; the server must answer
                # 408 instead of waiting forever.
                connection.send_request_head(content_length=64)
                raw = connection.read_response()
            finally:
                connection.close()
            status, payload = parse_response(raw)
            assert status == 408
            assert payload["error"]["code"] == "timeout"
            # The loop is alive and serving.
            assert ServeClient(harness.host, harness.port).health()[
                "status"
            ] == "ok"

    def test_disconnecting_client_does_not_kill_the_loop(
        self, served_world, server
    ):
        for _ in range(3):
            connection = RawConnection(server.host, server.port)
            connection.send_request_head(content_length=4096)
            connection.send(b"partial")
            connection.abort()
        # A polite client right after the rude ones gets full service.
        client = ServeClient(server.host, server.port)
        assert client.health()["status"] == "ok"
        response = client.detect(
            served_world.fingerprint, dataset=served_world.bundle.dirty
        )
        assert response["report"]["scored_cells"] > 0

    def test_empty_connection_is_ignored(self, served_world, server):
        connection = RawConnection(server.host, server.port)
        connection.close()
        time.sleep(0.05)
        assert ServeClient(server.host, server.port).health()["status"] == "ok"

    def test_corrupt_model_500_then_heals(self, served_world, tmp_path):
        root = tmp_path / "models"
        shutil.copytree(served_world.model_root / "alpha", root / "alpha")
        state_path = root / "alpha" / "state.json"
        good_state = state_path.read_text(encoding="utf-8")
        state_path.write_text(good_state[:150], encoding="utf-8")

        with InProcessServer(ServeConfig(model_root=root)) as harness:
            client = ServeClient(harness.host, harness.port)
            with pytest.raises(ServeClientError) as excinfo:
                client.detect(
                    served_world.fingerprint, dataset=served_world.bundle.dirty
                )
            assert excinfo.value.status == 500
            assert excinfo.value.code == "corrupt_model"
            # Loop alive, registry unpoisoned.
            assert client.health()["status"] == "ok"
            assert client.registry()["hot"] == []
            # Repair on disk; the very next request serves — no restart.
            state_path.write_text(good_state, encoding="utf-8")
            response = client.detect(
                served_world.fingerprint, dataset=served_world.bundle.dirty
            )
            assert response["report"]["scored_cells"] > 0

    def test_structured_error_payload_shape(self, served_world, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.detect("deadbeefdeadbeef", dataset=served_world.bundle.dirty)
        payload = excinfo.value.payload
        assert payload["schema"] == SERVE_SCHEMA
        assert payload["kind"] == "error"
        assert set(payload["error"]) == {"code", "message"}
