"""Wire-protocol tests: round-trip identity, golden schema pins, error paths.

The ``repro.serve/v1`` codec promises ``decode(encode(x)) == x`` for every
payload tree in the JSON data model, in *both* formats.  Hypothesis drives
the identity properties over arbitrary trees; the golden fixtures pin the
exact bytes of representative request/response payloads so an accidental
schema or encoding change fails loudly against a committed artifact.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    MAGIC,
    SERVE_SCHEMA,
    WireError,
    decode_payload,
    encode_payload,
    iter_cells,
    pack,
    require_schema,
    unpack,
)

GOLDEN = Path(__file__).parent / "golden"

# The JSON data model, recursively: what both wire formats must be closed
# under.  Floats exclude NaN (NaN != NaN breaks equality-based round-trip
# checks; the protocol never emits NaN probabilities).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=40),
)
payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=20), children, max_size=6),
    ),
    max_leaves=25,
)


class TestRoundTripProperties:
    @given(payload=payloads)
    @settings(max_examples=75, deadline=None)
    def test_pack_unpack_identity(self, payload):
        assert unpack(pack(payload)) == payload

    @given(payload=payloads)
    @settings(max_examples=75, deadline=None)
    def test_json_negotiated_identity(self, payload):
        raw = encode_payload(payload, JSON_CONTENT_TYPE)
        assert decode_payload(raw, JSON_CONTENT_TYPE) == payload

    @given(payload=payloads)
    @settings(max_examples=75, deadline=None)
    def test_binary_negotiated_identity(self, payload):
        raw = encode_payload(payload, BINARY_CONTENT_TYPE)
        assert decode_payload(raw, BINARY_CONTENT_TYPE) == payload

    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False)))
    @settings(max_examples=50, deadline=None)
    def test_probability_vectors_bit_exact_both_formats(self, values):
        """The property the serving layer actually depends on: float vectors
        survive both wire formats bit-for-bit."""
        payload = {"probabilities": values}
        for content_type in (JSON_CONTENT_TYPE, BINARY_CONTENT_TYPE):
            decoded = decode_payload(
                encode_payload(payload, content_type), content_type
            )
            assert decoded["probabilities"] == values
            for a, b in zip(decoded["probabilities"], values):
                assert struct.pack("<d", a) == struct.pack("<d", b)

    def test_awkward_floats_exact(self):
        awkward = [0.1, 2 / 3, 1e-300, 1e300, 5e-324, -0.0, 123456.789]
        decoded = unpack(pack(awkward))
        assert [struct.pack("<d", v) for v in decoded] == [
            struct.pack("<d", v) for v in awkward
        ]

    def test_dict_insertion_order_kept(self):
        payload = {"zebra": 1, "apple": 2, "mango": 3}
        assert list(unpack(pack(payload))) == ["zebra", "apple", "mango"]

    def test_tuple_encodes_as_list(self):
        assert unpack(pack((1, 2, "x"))) == [1, 2, "x"]


class TestGoldenFixtures:
    """Committed artifacts pinning the repro.serve/v1 schema and encodings.

    Regenerate with ``pytest tests/test_serving_wire.py --update-golden``.
    """

    @pytest.fixture()
    def golden(self, update_golden):
        path = GOLDEN / "serve_v1_wire.json"
        payloads = _golden_payloads()
        if update_golden:
            document = {
                name: {
                    "payload": payload,
                    "json": encode_payload(payload, JSON_CONTENT_TYPE).decode(
                        "utf-8"
                    ),
                    "repro_pack_hex": pack(payload).hex(),
                }
                for name, payload in payloads.items()
            }
            path.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return json.loads(path.read_text(encoding="utf-8"))

    def test_golden_covers_every_payload(self, golden):
        assert set(golden) == set(_golden_payloads())

    def test_golden_json_encoding_pinned(self, golden):
        for name, payload in _golden_payloads().items():
            assert (
                encode_payload(payload, JSON_CONTENT_TYPE).decode("utf-8")
                == golden[name]["json"]
            ), f"JSON encoding drifted for golden payload {name!r}"

    def test_golden_binary_encoding_pinned(self, golden):
        for name, payload in _golden_payloads().items():
            assert (
                pack(payload).hex() == golden[name]["repro_pack_hex"]
            ), f"repro-pack encoding drifted for golden payload {name!r}"

    def test_golden_bytes_decode_to_payload(self, golden):
        for name, entry in golden.items():
            assert decode_payload(
                entry["json"].encode("utf-8"), JSON_CONTENT_TYPE
            ) == entry["payload"], name
            assert unpack(bytes.fromhex(entry["repro_pack_hex"])) == entry[
                "payload"
            ], name

    def test_golden_schema_fields(self, golden):
        """The envelope fields of every request/response kind are pinned."""
        for entry in golden.values():
            assert entry["payload"]["schema"] == SERVE_SCHEMA
        detect = golden["detect_response"]["payload"]
        assert set(detect) == {"schema", "kind", "fingerprint", "tenant", "report"}
        report = detect["report"]
        assert set(report) == {
            "schema", "version", "rows", "attributes", "threshold",
            "scored_cells", "flagged_cells", "spec_fingerprint",
            "feature_cache", "artifact_store", "cells",
        }
        assert set(report["cells"][0]) == {
            "row", "attribute", "value", "error_probability", "flagged",
        }
        error = golden["error_response"]["payload"]
        assert set(error) == {"schema", "kind", "error"}
        assert set(error["error"]) == {"code", "message"}


class TestEncodeErrors:
    def test_int64_overflow_rejected(self):
        with pytest.raises(WireError, match="int64"):
            pack(2**63)
        with pytest.raises(WireError, match="int64"):
            pack(-(2**63) - 1)

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(WireError, match="keys must be strings"):
            pack({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(WireError, match="unsupported wire type"):
            pack({"bad": {1, 2}})
        with pytest.raises(WireError):
            encode_payload({"bad": object()}, JSON_CONTENT_TYPE)

    def test_unsupported_content_type_rejected(self):
        with pytest.raises(WireError, match="content type"):
            encode_payload({}, "application/xml")
        with pytest.raises(WireError, match="content type"):
            decode_payload(b"{}", "application/xml")


class TestDecodeErrors:
    def test_bad_magic(self):
        with pytest.raises(WireError, match="magic"):
            unpack(b"NOPE" + pack({})[len(MAGIC):])

    def test_truncated_payload(self):
        good = pack({"a": [1, 2, 3]})
        for cut in range(len(MAGIC) + 1, len(good)):
            with pytest.raises(WireError):
                unpack(good[:cut])

    def test_trailing_bytes(self):
        with pytest.raises(WireError, match="trailing"):
            unpack(pack(None) + b"x")

    def test_unknown_tag(self):
        with pytest.raises(WireError, match="unknown repro-pack tag"):
            unpack(MAGIC + b"z")

    def test_invalid_utf8_string(self):
        raw = MAGIC + b"s" + struct.pack("<I", 2) + b"\xff\xfe"
        with pytest.raises(WireError, match="UTF-8"):
            unpack(raw)

    def test_invalid_json(self):
        with pytest.raises(WireError, match="invalid JSON"):
            decode_payload(b"{nope", JSON_CONTENT_TYPE)
        with pytest.raises(WireError, match="invalid JSON"):
            decode_payload(b"\xff\xfe", JSON_CONTENT_TYPE)


class TestRequestValidation:
    def test_require_schema_accepts_envelope(self):
        payload = {"schema": SERVE_SCHEMA, "tenant": "acme"}
        assert require_schema(payload) is payload

    def test_require_schema_rejects_non_dict(self):
        with pytest.raises(WireError, match="must be an object"):
            require_schema([1, 2])

    def test_require_schema_rejects_wrong_schema(self):
        with pytest.raises(WireError, match="repro.serve/v1"):
            require_schema({"schema": "repro.serve/v0"})
        with pytest.raises(WireError, match="repro.serve/v1"):
            require_schema({})

    def test_iter_cells_valid(self):
        assert list(iter_cells([[0, "city"], [3, "zip"]])) == [
            (0, "city"),
            (3, "zip"),
        ]

    def test_iter_cells_rejects_bad_entries(self):
        for bad in (
            "cells",
            [[0]],
            [[0, "city", "extra"]],
            [["0", "city"]],
            [[True, "city"]],
            [[0, 1]],
            [None],
        ):
            with pytest.raises(WireError):
                list(iter_cells(bad))


def _golden_payloads() -> dict[str, dict]:
    """Representative payloads of every wire kind, with fixed values."""
    return {
        "detect_request": {
            "schema": SERVE_SCHEMA,
            "fingerprint": "3042e575351c",
            "tenant": "acme",
            "columns": ["zip", "city"],
            "rows": [["60612", "Chicago"], ["60612", "Cicago"]],
            "threshold": 0.5,
        },
        "detect_response": {
            "schema": SERVE_SCHEMA,
            "kind": "detect",
            "fingerprint": "3042e575351c" + "0" * 52,
            "tenant": "acme",
            "report": {
                "schema": "repro.detect/v1",
                "version": "0.1.0",
                "rows": 2,
                "attributes": ["zip", "city"],
                "threshold": 0.5,
                "scored_cells": 4,
                "flagged_cells": 1,
                "spec_fingerprint": "3042e575351c" + "0" * 52,
                "feature_cache": None,
                "artifact_store": None,
                "cells": [
                    {
                        "row": 1,
                        "attribute": "city",
                        "value": "Cicago",
                        "error_probability": 0.87,
                        "flagged": True,
                    },
                    {
                        "row": 0,
                        "attribute": "zip",
                        "value": "60612",
                        "error_probability": 0.03,
                        "flagged": False,
                    },
                ],
            },
        },
        "rescore_request": {
            "schema": SERVE_SCHEMA,
            "tenant": "acme",
            "edits": [{"row": 1, "attribute": "city", "value": "Chicago"}],
            "refresh": False,
        },
        "error_response": {
            "schema": SERVE_SCHEMA,
            "kind": "error",
            "error": {
                "code": "unknown_fingerprint",
                "message": "unknown spec fingerprint 'deadbeef'",
            },
        },
    }
