"""Tests for the declarative DetectorSpec public API (``repro.spec``).

Covers spec parsing/validation, fingerprint stability (hypothesis:
reordering keys and swapping shorthand/table component forms never changes
a fingerprint), the spec → build → fit → save → load round-trip with
bit-identical predictions, and the DetectorConfig eager validation that
backs it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import DetectorConfig, DetectorSpec, HoloDetect, SpecError
from repro.evaluation import evaluate_predictions, make_split
from repro.features.pipeline import DEFAULT_MODEL_ORDER
from repro.persistence import load_detector, save_detector
from repro.spec import SPEC_SCHEMA, load_spec


# --------------------------------------------------------------------- #
# Parsing + validation
# --------------------------------------------------------------------- #


class TestSpecParsing:
    def test_schema_is_required(self):
        with pytest.raises(SpecError, match="schema"):
            DetectorSpec.from_dict({"detector": {}})
        with pytest.raises(SpecError, match="schema"):
            DetectorSpec.from_dict({"schema": "repro.spec/v999"})

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(SpecError, match=r"unknown spec keys \['pipeline'\]"):
            DetectorSpec.from_dict({"schema": SPEC_SCHEMA, "pipeline": []})

    def test_unknown_detector_field_lists_valid_keys(self):
        with pytest.raises(SpecError, match="valid keys.*embedding_dim"):
            DetectorSpec.from_dict(
                {"schema": SPEC_SCHEMA, "detector": {"epoch": 9}}
            )

    def test_out_of_range_detector_field_is_actionable(self):
        with pytest.raises(SpecError, match="epochs must be a positive integer"):
            DetectorSpec.from_dict(
                {"schema": SPEC_SCHEMA, "detector": {"epochs": -3}}
            )

    def test_policy_override_is_not_specable(self):
        with pytest.raises(SpecError, match="policy_override is not spec-able"):
            DetectorSpec.from_dict(
                {"schema": SPEC_SCHEMA, "detector": {"policy_override": "x"}}
            )

    def test_unknown_featurizer_rejected_eagerly(self):
        with pytest.raises(SpecError, match="unknown featurizer 'nope'"):
            DetectorSpec.from_dict(
                {"schema": SPEC_SCHEMA, "featurizers": ["nope"]}
            )

    def test_bad_featurizer_params_rejected_eagerly(self):
        with pytest.raises(SpecError, match="unknown parameters"):
            DetectorSpec.from_dict(
                {
                    "schema": SPEC_SCHEMA,
                    "featurizers": [{"name": "char_embedding", "width": 9}],
                }
            )

    def test_duplicate_featurizers_rejected(self):
        with pytest.raises(SpecError, match="duplicate featurizer names"):
            DetectorSpec.from_dict(
                {"schema": SPEC_SCHEMA, "featurizers": ["column_id", "column_id"]}
            )

    def test_empty_featurizer_list_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            DetectorSpec.from_dict({"schema": SPEC_SCHEMA, "featurizers": []})

    def test_unknown_policy_and_calibrator_rejected(self):
        with pytest.raises(SpecError, match="unknown policy"):
            DetectorSpec.from_dict({"schema": SPEC_SCHEMA, "policy": "nope"})
        with pytest.raises(SpecError, match="unknown calibrator"):
            DetectorSpec.from_dict({"schema": SPEC_SCHEMA, "calibrator": "nope"})

    def test_from_file_toml_and_json(self, tmp_path):
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            'schema = "repro.spec/v1"\ncalibrator = "none"\n'
            "[detector]\nepochs = 7\n"
        )
        json_path = tmp_path / "spec.json"
        json_path.write_text(
            json.dumps(
                {"schema": SPEC_SCHEMA, "detector": {"epochs": 7}, "calibrator": "none"}
            )
        )
        from_toml = DetectorSpec.from_file(toml_path)
        from_json = DetectorSpec.from_file(json_path)
        assert from_toml == from_json
        assert from_toml.fingerprint() == from_json.fingerprint()

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            DetectorSpec.from_file(tmp_path / "missing.toml")
        bad = tmp_path / "bad.yaml"
        bad.write_text("x")
        with pytest.raises(SpecError, match="unsupported spec format"):
            DetectorSpec.from_file(bad)
        invalid = tmp_path / "broken.toml"
        invalid.write_text("schema = [unclosed")
        with pytest.raises(SpecError, match="invalid TOML"):
            DetectorSpec.from_file(invalid)

    def test_example_spec_is_valid(self):
        spec = DetectorSpec.from_file("examples/detector_default.toml")
        assert spec.featurizers is None
        assert spec.policy == ("learned", ())

    def test_load_spec_coerces_all_source_shapes(self, tmp_path):
        spec = DetectorSpec.default(epochs=3)
        assert load_spec(spec) is spec
        assert load_spec(spec.to_dict()) == spec
        path = tmp_path / "s.json"
        spec.to_file(path)
        assert load_spec(path) == spec


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #


_detector_tables = st.fixed_dictionaries(
    {},
    optional={
        "epochs": st.integers(1, 50),
        "embedding_dim": st.integers(1, 32),
        "seed": st.integers(0, 2**31 - 1),
        "dropout": st.sampled_from([0.0, 0.1, 0.5]),
        "augment": st.booleans(),
    },
)

_featurizer_lists = st.one_of(
    st.none(),
    st.lists(
        st.sampled_from(
            [
                "column_id",
                "empirical_dist",
                {"name": "char_embedding", "dim": 4},
                {"name": "format_3gram", "least_k": 2},
                "value_length",
            ]
        ),
        min_size=1,
        max_size=4,
        unique_by=lambda e: e if isinstance(e, str) else e["name"],
    ),
)


@st.composite
def _spec_payloads(draw):
    payload = {
        "schema": SPEC_SCHEMA,
        "detector": draw(_detector_tables),
        "policy": draw(st.sampled_from(["learned", "uniform"])),
        "calibrator": draw(st.sampled_from(["platt", "none"])),
    }
    featurizers = draw(_featurizer_lists)
    if featurizers is not None:
        payload["featurizers"] = featurizers
    return payload


def _reorder(payload: dict, order: list[int]) -> dict:
    keys = list(payload)
    if not keys:
        return {}
    permuted = [keys[i % len(keys)] for i in order] + keys
    out = {}
    for key in permuted:
        if key not in out:
            out[key] = payload[key]
    return out


class TestFingerprint:
    @settings(max_examples=40, deadline=None)
    @given(payload=_spec_payloads(), order=st.lists(st.integers(0, 9), max_size=10))
    def test_fingerprint_stable_under_key_reordering(self, payload, order):
        """Insertion order of mapping keys — top-level and [detector] —
        never changes the fingerprint."""
        reordered = _reorder(payload, order)
        reordered["detector"] = _reorder(payload["detector"], order)
        assert (
            DetectorSpec.from_dict(payload).fingerprint()
            == DetectorSpec.from_dict(reordered).fingerprint()
        )

    def test_fingerprint_stable_under_component_shorthand(self):
        bare = DetectorSpec.from_dict({"schema": SPEC_SCHEMA, "policy": "learned"})
        table = DetectorSpec.from_dict(
            {"schema": SPEC_SCHEMA, "policy": {"name": "learned"}}
        )
        assert bare.fingerprint() == table.fingerprint()

    def test_fingerprint_distinguishes_real_changes(self):
        a = DetectorSpec.default()
        b = DetectorSpec.default(epochs=41)
        c = DetectorSpec.from_dict({"schema": SPEC_SCHEMA, "calibrator": "none"})
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_fingerprint_is_sha256_hex(self):
        fingerprint = DetectorSpec.default().fingerprint()
        assert len(fingerprint) == 64 and int(fingerprint, 16) >= 0


# --------------------------------------------------------------------- #
# Build → fit → save → load round-trip
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def small_bundle():
    bundle = repro.load_dataset("hospital", num_rows=60, seed=1)
    split = make_split(bundle, 0.2, rng=0)
    return bundle, split


FAST = {"epochs": 5, "embedding_dim": 6, "seed": 0}


def _fit_and_predict(detector, bundle, split):
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    return detector.predict(split.test_cells)


class TestSpecRoundTrip:
    def test_spec_built_equals_code_built_bit_for_bit(self, small_bundle, tmp_path):
        """The acceptance criterion: spec → build → fit → save → load yields
        bit-identical predictions to the code-built detector."""
        bundle, split = small_bundle
        spec = DetectorSpec.default(**FAST)

        code_built = HoloDetect(DetectorConfig(**FAST))
        code_predictions = _fit_and_predict(code_built, bundle, split)

        spec_built = repro.build(spec)
        assert spec_built.spec is spec or spec_built.spec == spec
        spec_predictions = _fit_and_predict(spec_built, bundle, split)
        np.testing.assert_array_equal(
            spec_predictions.probabilities, code_predictions.probabilities
        )

        save_detector(spec_built, tmp_path / "model")
        loaded = load_detector(tmp_path / "model", bundle.dirty)
        assert loaded.spec is not None
        assert loaded.spec.fingerprint() == spec.fingerprint()
        loaded_predictions = loaded.predict(split.test_cells)
        np.testing.assert_array_equal(
            loaded_predictions.probabilities, code_predictions.probabilities
        )
        # The sidecar carries the fingerprint for humans and tooling.
        sidecar = json.loads((tmp_path / "model" / "spec.json").read_text())
        assert sidecar["fingerprint"] == spec.fingerprint()

    def test_explicit_default_featurizer_list_is_equivalent(self, small_bundle):
        """Spelling the Table 7 pipeline out explicitly builds the same
        detector as omitting `featurizers`."""
        bundle, split = small_bundle
        explicit = DetectorSpec.from_dict(
            {
                "schema": SPEC_SCHEMA,
                "detector": dict(FAST),
                "featurizers": list(DEFAULT_MODEL_ORDER) + ["constraint_violations"],
            }
        )
        implicit_predictions = _fit_and_predict(
            DetectorSpec.default(**FAST).build(), bundle, split
        )
        explicit_predictions = _fit_and_predict(explicit.build(), bundle, split)
        np.testing.assert_array_equal(
            explicit_predictions.probabilities, implicit_predictions.probabilities
        )

    def test_custom_featurizer_spec_fits_and_predicts(self, small_bundle):
        bundle, split = small_bundle
        spec = DetectorSpec.from_dict(
            {
                "schema": SPEC_SCHEMA,
                "detector": dict(FAST),
                "featurizers": [
                    "empirical_dist",
                    "format_3gram",
                    {"name": "char_embedding", "dim": 4},
                    {"name": "custom_components:ConstantFeaturizer", "value": 0.25},
                ],
            }
        )
        detector = spec.build()
        predictions = _fit_and_predict(detector, bundle, split)
        assert len(predictions.cells) == len(split.test_cells)
        assert detector.pipeline.model_names[-1] == "constant"
        metrics = evaluate_predictions(
            predictions.error_cells, bundle.error_cells, split.test_cells
        )
        assert 0.0 <= metrics.f1 <= 1.0

    def test_custom_featurizer_has_no_persistence_handler(
        self, small_bundle, tmp_path
    ):
        bundle, split = small_bundle
        spec = DetectorSpec.from_dict(
            {
                "schema": SPEC_SCHEMA,
                "detector": dict(FAST),
                "featurizers": [
                    "empirical_dist",
                    {"name": "custom_components:ConstantFeaturizer", "value": 1.0},
                ],
            }
        )
        detector = spec.build()
        _fit_and_predict(detector, bundle, split)
        with pytest.raises(TypeError, match="no persistence handler"):
            save_detector(detector, tmp_path / "model")

    def test_policy_and_calibrator_components_take_effect(self, small_bundle):
        bundle, split = small_bundle
        spec = DetectorSpec.from_dict(
            {
                "schema": SPEC_SCHEMA,
                "detector": dict(FAST),
                "policy": {"name": "random-channel", "seed": 7},
                "calibrator": "none",
            }
        )
        detector = spec.build()
        _fit_and_predict(detector, bundle, split)
        from repro.baselines.augmentation_variants import RandomChannelPolicy

        assert isinstance(detector.policy, RandomChannelPolicy)
        # The "none" calibrator is the identity sigmoid.
        assert detector.scaler.a == 1.0 and detector.scaler.b == 0.0

    def test_imperative_policy_override_beats_spec(self, small_bundle):
        from repro.augmentation.policy import Policy

        bundle, split = small_bundle
        override = Policy.learn([("Chicago", "Cxcago")])
        spec = DetectorSpec.default(**FAST)
        detector = HoloDetect.from_spec(spec)
        detector.config.policy_override = override
        _fit_and_predict(detector, bundle, split)
        assert detector.policy is override


# --------------------------------------------------------------------- #
# DetectorConfig eager validation (satellite)
# --------------------------------------------------------------------- #


class TestDetectorConfigValidation:
    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("epochs", 0, "epochs must be a positive integer"),
            ("epochs", -5, "epochs must be a positive integer"),
            ("embedding_dim", 0, "embedding_dim must be a positive integer"),
            ("hidden_dim", -1, "hidden_dim must be a positive integer"),
            ("batch_size", 0, "batch_size must be a positive integer"),
            ("prediction_batch", 0, "prediction_batch must be a positive integer"),
            ("prediction_workers", 0, "prediction_workers must be a positive integer"),
            ("cache_max_entries", 0, "cache_max_entries must be a positive integer"),
            ("dropout", 1.0, r"dropout must be in \[0, 1\)"),
            ("dropout", -0.1, r"dropout must be in \[0, 1\)"),
            ("holdout_fraction", 1.5, r"holdout_fraction must be in \[0, 1\)"),
            ("lr", 0.0, "lr must be positive"),
            ("lr", -1e-3, "lr must be positive"),
            ("weight_decay", -1e-5, "weight_decay must be non-negative"),
            ("min_training_steps", -1, "min_training_steps must be a non-negative"),
            ("alpha", 0.0, "alpha must be positive"),
            ("target_ratio", -2.0, "target_ratio must be positive or None"),
            ("min_error_pairs", -1, "min_error_pairs must be a non-negative"),
            ("weak_supervision_max_cells", 0, "weak_supervision_max_cells"),
            ("seed", -1, "seed must be a non-negative integer"),
        ],
    )
    def test_bad_values_fail_fast_with_field_name(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            DetectorConfig(**{field: value})

    def test_good_config_passes(self):
        config = DetectorConfig(
            epochs=1, dropout=0.0, holdout_fraction=0.0, target_ratio=1.0,
            exclude_models=["neighborhood"],
        )
        # Convenience coercion: spec files hand lists, configs store tuples.
        assert config.exclude_models == ("neighborhood",)

    def test_replace_revalidates(self):
        from dataclasses import replace

        with pytest.raises(ValueError, match="seed"):
            replace(DetectorConfig(), seed=-3)


class TestSpecImmutability:
    def test_specs_are_hashable_and_usable_as_keys(self):
        a = DetectorSpec.default(epochs=5)
        b = DetectorSpec.default(epochs=5)
        c = DetectorSpec.default(epochs=6)
        assert a == b and hash(a) == hash(b)
        assert len({a, b, c}) == 2

    def test_field_mappings_are_frozen(self):
        spec = DetectorSpec.from_dict(
            {
                "schema": SPEC_SCHEMA,
                "detector": {"epochs": 5},
                "featurizers": [{"name": "char_embedding", "dim": 4}],
            }
        )
        with pytest.raises(TypeError):
            spec.detector["epochs"] = 99  # type: ignore[index]
        with pytest.raises(TypeError):
            spec.featurizers[0][1]["dim"] = 2  # type: ignore[index]
        # The frozen pair form reads back as a plain mapping.
        assert dict(spec.detector) == {"epochs": 5}
        assert dict(spec.featurizers[0][1]) == {"dim": 4}

    def test_from_spec_validates_directly_constructed_specs(self):
        with pytest.raises(SpecError, match="unknown featurizer 'nope'"):
            HoloDetect.from_spec(DetectorSpec(featurizers=(("nope", {}),)))
        with pytest.raises(SpecError, match="unknown calibrator"):
            HoloDetect.from_spec(DetectorSpec(calibrator=("nope", {})))
