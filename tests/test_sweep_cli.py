"""Tests for the ``repro sweep`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SPEC_TOML = """\
[matrix]
seed = 3
trials = 2
datasets = [{ name = "hospital", rows = 60 }]
label_budgets = [0.2]
methods = ["cv", "od"]
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "sweep.toml"
    path.write_text(SPEC_TOML)
    return path


def run_sweep(*argv: str) -> int:
    return main(["sweep", *map(str, argv)])


class TestSpecParsing:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="sweep spec error.*not found"):
            run_sweep("--spec", tmp_path / "nope.toml")

    def test_invalid_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("datasets = [broken")
        with pytest.raises(SystemExit, match="invalid TOML"):
            run_sweep("--spec", path)

    def test_unknown_method(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"datasets": ["hospital"], "label_budgets": [0.1], "methods": ["nope"]})
        )
        with pytest.raises(SystemExit, match="unknown method"):
            run_sweep("--spec", path)

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("datasets: [hospital]")
        with pytest.raises(SystemExit, match="unsupported spec format"):
            run_sweep("--spec", path)

    def test_resume_without_store(self, spec_path):
        with pytest.raises(SystemExit, match="--resume requires --store"):
            run_sweep("--spec", spec_path, "--resume")

    def test_existing_store_without_resume(self, spec_path, tmp_path):
        store = tmp_path / "store.jsonl"
        store.write_text("")
        with pytest.raises(SystemExit, match="pass --resume"):
            run_sweep("--spec", spec_path, "--store", store)


class TestSweepExecution:
    def test_prints_table_and_writes_report(self, spec_path, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert run_sweep(
            "--spec", spec_path, "--executor", "serial", "--report", report_path
        ) == 0
        out = capsys.readouterr()
        assert "| hospital" in out.out  # summary table on stdout
        assert "[2/2]" in out.err  # progress on stderr
        assert "2 scenarios (2 run, 0 cached)" in out.err

        payload = json.loads(report_path.read_text())
        assert payload["schema"] == "repro.sweep/v1"
        assert payload["total"] == 2
        assert payload["executed"] == 2 and payload["cached"] == 0
        assert payload["spec_file"] == str(spec_path)
        assert payload["wall_time"] >= 0.0
        assert {s["name"] if isinstance(s, dict) else s for s in payload["matrix"]["methods"]} \
            == {"cv", "od"}
        for record in payload["scenarios"]:
            assert set(record["metrics"]) == {"precision", "recall", "f1"}
            assert record["spec"]["dataset"] == "hospital"
            assert len(record["trials"]) == 2
            assert record["cached"] is False

    def test_resume_on_partial_store(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        report_a = tmp_path / "a.json"
        report_b = tmp_path / "b.json"
        run_sweep("--spec", spec_path, "--executor", "serial",
                  "--store", store, "--resume", "--report", report_a)
        capsys.readouterr()

        # Drop the second completed scenario, as if the sweep was killed.
        lines = store.read_text().splitlines()
        store.write_text(lines[0] + "\n")
        run_sweep("--spec", spec_path, "--executor", "serial",
                  "--store", store, "--resume", "--report", report_b)
        err = capsys.readouterr().err
        assert "2 scenarios (1 run, 1 cached)" in err

        a = json.loads(report_a.read_text())
        b = json.loads(report_b.read_text())
        keep = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")
        assert [{k: r[k] for k in keep} for r in a["scenarios"]] == [
            {k: r[k] for k in keep} for r in b["scenarios"]
        ]

    def test_resume_skips_corrupt_tail(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        run_sweep("--spec", spec_path, "--executor", "serial", "--store", store, "--resume")
        capsys.readouterr()
        with store.open("a") as f:
            f.write('{"fingerprint": "half-writ')
        run_sweep("--spec", spec_path, "--executor", "serial", "--store", store, "--resume")
        err = capsys.readouterr().err
        assert "skipped 1 unparseable line" in err
        assert "2 scenarios (0 run, 2 cached)" in err

    def test_worker_count_is_clamped(self, spec_path, capsys):
        run_sweep("--spec", spec_path, "--executor", "serial", "--workers", "-5")
        assert "with 1 worker(s)" in capsys.readouterr().err
        run_sweep("--spec", spec_path, "--executor", "thread", "--workers", "99")
        # 2 pending scenarios -> at most 2 workers despite the request.
        assert "with 2 worker(s)" in capsys.readouterr().err

    def test_parallel_matches_serial(self, spec_path, tmp_path, capsys):
        serial_report = tmp_path / "serial.json"
        thread_report = tmp_path / "thread.json"
        run_sweep("--spec", spec_path, "--executor", "serial", "--report", serial_report)
        run_sweep("--spec", spec_path, "--executor", "thread", "--workers", "2",
                  "--report", thread_report)
        capsys.readouterr()
        a = json.loads(serial_report.read_text())
        b = json.loads(thread_report.read_text())
        for ra, rb in zip(a["scenarios"], b["scenarios"]):
            assert ra["metrics"] == rb["metrics"]
            assert ra["trials"] == rb["trials"]


class TestCoordinationFlags:
    def test_worker_id_requires_coordinate(self, spec_path):
        with pytest.raises(SystemExit, match="--worker-id only applies with --coordinate"):
            run_sweep("--spec", spec_path, "--worker-id", "w1")

    def test_lease_ttl_requires_coordinate(self, spec_path):
        with pytest.raises(SystemExit, match="--lease-ttl only applies with --coordinate"):
            run_sweep("--spec", spec_path, "--lease-ttl", "30")

    def test_coordinate_requires_store(self, spec_path):
        with pytest.raises(SystemExit, match="--coordinate requires --store"):
            run_sweep("--spec", spec_path, "--coordinate")

    def test_compact_requires_store(self, spec_path):
        with pytest.raises(SystemExit, match="--compact requires --store"):
            run_sweep("--spec", spec_path, "--compact")

    def test_coordinated_sweep_tolerates_existing_store(self, spec_path, tmp_path, capsys):
        """--coordinate implies --resume: a shared store already being
        drained by peers is the normal case, not an error."""
        store = tmp_path / "store.jsonl"
        run_sweep("--spec", spec_path, "--executor", "serial",
                  "--store", store, "--coordinate", "--worker-id", "first")
        err = capsys.readouterr().err
        assert "2 scenarios (2 run, 0 cached)" in err
        assert "worker first executed 2" in err
        # Second worker, same store, no --resume flag: nothing left to do.
        run_sweep("--spec", spec_path, "--executor", "serial",
                  "--store", store, "--coordinate", "--worker-id", "second")
        err = capsys.readouterr().err
        assert "2 scenarios (0 run, 2 cached)" in err
        assert "worker second executed 0" in err
        assert "(2 already stored)" in err

    def test_compact_rewrites_superseded_records(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        run_sweep("--spec", spec_path, "--executor", "serial", "--store", store, "--resume")
        capsys.readouterr()
        # Duplicate both records, as accumulated re-runs would.
        lines = store.read_text().splitlines()
        with store.open("a") as f:
            for line in lines:
                f.write(line + "\n")
        run_sweep("--spec", spec_path, "--executor", "serial",
                  "--store", store, "--resume", "--compact")
        err = capsys.readouterr().err
        assert "kept 2 record(s), dropped 2 superseded line(s)" in err
        assert len(store.read_text().splitlines()) == 2
