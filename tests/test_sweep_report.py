"""Tests for the live sweep dashboard (:mod:`repro.coordination.report`
and the ``repro report`` CLI)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.coordination import WorkQueue, build_report, render_markdown
from repro.evaluation.matrix import ScenarioMatrix
from repro.evaluation.store import ResultStore

SPEC = {
    "datasets": [{"name": "hospital", "rows": 60}],
    "error_profiles": ["native"],
    "label_budgets": [0.1, 0.2],
    "methods": ["cv", "od"],
    "trials": 1,
    "seed": 7,
}

SPEC_TOML = """\
[matrix]
seed = 7
trials = 1
datasets = [{ name = "hospital", rows = 60 }]
label_budgets = [0.1, 0.2]
methods = ["cv", "od"]
"""


@pytest.fixture(scope="module")
def matrix() -> ScenarioMatrix:
    return ScenarioMatrix.from_dict(SPEC)


def fake_record(spec, elapsed: float = 2.0) -> dict:
    """A store record with exactly what the dashboard reads."""
    return {
        "fingerprint": spec.fingerprint(),
        "spec": spec.to_dict(),
        "metrics": {"precision": 1.0, "recall": 1.0, "f1": 1.0},
        "elapsed": elapsed,
    }


@pytest.fixture
def partial(tmp_path, matrix):
    """A half-drained sweep: 2 of 4 completed, 1 lease in flight.

    Returns ``(store, coord_dir, specs)``; the lease (held by worker
    ``w1``, claimed at t=100) covers ``specs[2]``.
    """
    specs = matrix.expand()
    store = ResultStore(tmp_path / "store.jsonl")
    store.put(fake_record(specs[0], elapsed=2.0))
    store.put(fake_record(specs[1], elapsed=4.0))
    coord = tmp_path / "store.jsonl.coord"
    queue = WorkQueue(coord, worker_id="w1", ttl=60.0, clock=lambda: 100.0)
    assert queue.claim(specs[2].fingerprint())
    return store, coord, specs


class TestBuildReport:
    def test_counts_and_schema(self, partial, matrix):
        store, coord, specs = partial
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        assert report["schema"] == "repro.report/v1"
        assert report["total"] == 4
        assert report["completed"] == 2
        assert report["in_flight"] == 1
        assert report["pending"] == 1
        assert report["unrelated_records"] == 0
        assert report["generated_at"] == 150.0

    def test_lease_table(self, partial, matrix):
        store, coord, specs = partial
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        (lease,) = report["leases"]
        assert lease["fingerprint"] == specs[2].fingerprint()
        assert lease["worker"] == "w1"
        assert lease["age"] == 50.0
        assert lease["heartbeat_age"] == 50.0
        assert lease["stale"] is False

    def test_stale_lease_labelled(self, partial, matrix):
        store, coord, _ = partial
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=200.0
        )
        assert report["leases"][0]["stale"] is True
        # Staleness depends on the TTL the observer passes, nothing else.
        relaxed = build_report(
            store, matrix=matrix, coordination=coord, ttl=500.0, now=200.0
        )
        assert relaxed["leases"][0]["stale"] is False

    def test_lease_on_completed_scenario_is_hidden(self, partial, matrix):
        store, coord, specs = partial
        # The worker finished but its release hasn't landed yet: the store
        # wins, so the scenario is counted completed, not in-flight.
        queue = WorkQueue(coord, worker_id="w2", ttl=60.0, clock=lambda: 100.0)
        queue.claim(specs[0].fingerprint())
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        assert report["completed"] == 2
        assert report["in_flight"] == 1  # still only specs[2]
        assert {l["fingerprint"] for l in report["leases"]} == {
            specs[2].fingerprint()
        }

    def test_per_axis_progress(self, partial, matrix):
        store, coord, specs = partial
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        progress = report["progress"]
        assert progress["dataset"] == {"hospital": {"done": 2, "total": 4}}
        # specs[0]/specs[1] are budget 0.1 (cv, od); 0.2 is untouched.
        assert progress["label_budget"] == {
            "0.1": {"done": 2, "total": 2},
            "0.2": {"done": 0, "total": 2},
        }
        assert progress["method"] == {
            "cv": {"done": 1, "total": 2},
            "od": {"done": 1, "total": 2},
        }

    def test_eta_extrapolates_from_completed_wall_clocks(self, partial, matrix):
        store, coord, _ = partial
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        eta = report["eta"]
        assert eta["mean_scenario_seconds"] == 3.0  # (2.0 + 4.0) / 2
        assert eta["remaining"] == 2
        assert eta["assumed_parallelism"] == 1  # one live lease
        assert eta["eta_seconds"] == 6.0

    def test_eta_absent_when_done_or_unstarted(self, tmp_path, matrix):
        store = ResultStore(tmp_path / "store.jsonl")
        # Nothing completed: no wall-clocks to extrapolate from.
        assert build_report(store, matrix=matrix, now=1.0)["eta"] is None
        for spec in matrix.expand():
            store.put(fake_record(spec))
        # Everything completed: nothing remaining.
        assert build_report(store, matrix=matrix, now=1.0)["eta"] is None

    def test_unrelated_records_counted_separately(self, partial, matrix):
        store, coord, _ = partial
        store.put({"fingerprint": "f" * 64, "spec": {}, "elapsed": 1.0})
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        assert report["completed"] == 2  # the stray record doesn't inflate
        assert report["unrelated_records"] == 1

    def test_degraded_mode_without_matrix(self, partial):
        store, coord, specs = partial
        report = build_report(store, coordination=coord, ttl=60.0, now=150.0)
        assert report["total"] is None
        assert report["pending"] is None
        assert report["completed"] == 2
        assert report["in_flight"] == 1
        assert report["eta"] is None

    def test_worker_completions_from_audit(self, partial, matrix):
        store, coord, specs = partial
        scribe = WorkQueue(coord, worker_id="w9", ttl=60.0, clock=lambda: 110.0)
        for spec in specs[:2]:
            scribe.claim(spec.fingerprint())  # no-op for specs[2]'s holder
            scribe.release(spec.fingerprint(), event="complete")
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        assert report["workers"] == {"w9": 2}

    def test_sees_records_appended_after_store_open(self, partial, matrix):
        store, coord, specs = partial
        # Another worker appends behind this handle's back; build_report
        # refresh()es, so the dashboard is live, not load-time stale.
        other = ResultStore(store.path)
        other.put(fake_record(specs[3]))
        report = build_report(
            store, matrix=matrix, coordination=coord, ttl=60.0, now=150.0
        )
        assert report["completed"] == 3


class TestRenderMarkdown:
    def test_full_dashboard(self, partial, matrix):
        store, coord, specs = partial
        queue = WorkQueue(coord, worker_id="w1", ttl=60.0, clock=lambda: 120.0)
        queue.release(specs[2].fingerprint(), event="complete")
        queue2 = WorkQueue(coord, worker_id="w2", ttl=60.0, clock=lambda: 130.0)
        queue2.claim(specs[3].fingerprint())
        store.put(fake_record(specs[2], elapsed=3.0))
        page = render_markdown(
            build_report(
                store, matrix=matrix, coordination=coord, ttl=60.0, now=1000.0
            )
        )
        assert "**3/4** scenarios completed (75%)" in page
        assert "**1** in flight" in page
        assert "ETA:" in page
        assert "## Progress by method" in page
        assert "## In-flight leases" in page
        assert "STALE" in page  # w2's heartbeat is 870s old at now=1000
        assert "## Completions by worker" in page
        assert "| w1" in page

    def test_degraded_page_without_matrix(self, partial):
        store, coord, _ = partial
        page = render_markdown(
            build_report(store, coordination=coord, ttl=60.0, now=150.0)
        )
        assert "grid total unknown" in page
        assert "**2** scenario(s) completed" in page


class TestReportCli:
    def test_missing_store_without_spec_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["report", "--store", str(tmp_path / "nope.jsonl")])

    def test_missing_store_with_spec_reports_zero(self, tmp_path, capsys):
        spec = tmp_path / "spec.toml"
        spec.write_text(SPEC_TOML)
        assert (
            main(
                [
                    "report",
                    "--store", str(tmp_path / "nope.jsonl"),
                    "--spec", str(spec),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "**0/4** scenarios completed (0%)" in out

    def test_dashboard_and_json_payload(self, partial, tmp_path, capsys):
        store, coord, _ = partial
        spec = tmp_path / "spec.toml"
        spec.write_text(SPEC_TOML)
        json_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "report",
                    "--store", str(store.path),
                    "--spec", str(spec),
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# Sweep report" in out
        assert "**2/4** scenarios completed (50%)" in out
        assert "## In-flight leases" in out  # <store>.coord auto-discovered
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro.report/v1"
        assert payload["total"] == 4
        assert payload["completed"] == 2
        assert payload["in_flight"] == 1
