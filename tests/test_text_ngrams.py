"""Unit + property tests for n-gram language models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.ngrams import NGramModel, SymbolicNGramModel, extract_ngrams


class TestExtractNgrams:
    def test_short_value_padded(self):
        grams = extract_ngrams("a", 3)
        assert len(grams) == 1  # BOS + a + EOS

    def test_empty_value_still_has_gram(self):
        assert len(extract_ngrams("", 3)) >= 1

    def test_count(self):
        # padded length = len + 2; grams = padded - n + 1
        assert len(extract_ngrams("abcd", 3)) == 4

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            extract_ngrams("abc", 0)


class TestNGramModel:
    def test_frequent_gram_more_probable(self):
        model = NGramModel(n=3).fit(["60612"] * 50 + ["99999"])
        common = model.min_gram_probability("60612")
        rare = model.min_gram_probability("99999")
        assert common > rare

    def test_unseen_gram_gets_smoothed_floor(self):
        model = NGramModel(n=3).fit(["aaa"] * 10)
        p = model.probability("zzz")
        assert p > 0.0

    def test_min_gram_probability_detects_typo(self):
        values = [f"606{d}2" for d in "0123456789"] * 5
        model = NGramModel(n=3).fit(values)
        assert model.min_gram_probability("60x12") < model.min_gram_probability("60612")

    def test_least_probable_grams_sorted_and_padded(self):
        model = NGramModel(n=3).fit(["abcdef"] * 3)
        probs = model.least_probable_grams("ab", 4)
        assert len(probs) == 4
        assert probs == sorted(probs)

    def test_least_probable_invalid_k(self):
        model = NGramModel(n=3).fit(["abc"])
        with pytest.raises(ValueError):
            model.least_probable_grams("abc", 0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            NGramModel(alpha=0.0)

    @given(st.lists(st.text(alphabet="abc012", max_size=8), min_size=1, max_size=30))
    def test_probabilities_are_valid(self, values):
        model = NGramModel(n=3).fit(values)
        for v in values:
            p = model.min_gram_probability(v)
            assert 0.0 < p <= 1.0


class TestSymbolicNGramModel:
    def test_shape_violation_detected(self):
        model = SymbolicNGramModel(n=3).fit(["12345"] * 30)
        clean = model.min_gram_probability("67890")
        dirty = model.min_gram_probability("67x90")
        assert clean > dirty

    def test_same_shape_same_probability(self):
        model = SymbolicNGramModel(n=3).fit(["12345"] * 10)
        assert model.min_gram_probability("00000") == pytest.approx(
            model.min_gram_probability("99999")
        )
