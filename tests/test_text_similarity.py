"""Unit + property tests for string similarity primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import longest_common_substring, sequence_similarity

short_text = st.text(alphabet="abc01", max_size=12)


class TestLongestCommonSubstring:
    def test_basic(self):
        start_a, start_b, length = longest_common_substring("60612", "6061x2")
        assert ("60612"[start_a : start_a + length]) == "6061"
        assert length == 4

    def test_no_overlap(self):
        assert longest_common_substring("abc", "xyz")[2] == 0

    def test_empty(self):
        assert longest_common_substring("", "abc") == (0, 0, 0)

    def test_identical(self):
        _, _, length = longest_common_substring("hello", "hello")
        assert length == 5

    @given(short_text, short_text)
    def test_result_is_common_substring(self, a, b):
        start_a, start_b, length = longest_common_substring(a, b)
        assert a[start_a : start_a + length] == b[start_b : start_b + length]

    @given(short_text, short_text)
    def test_symmetry_of_length(self, a, b):
        assert longest_common_substring(a, b)[2] == longest_common_substring(b, a)[2]


class TestSequenceSimilarity:
    def test_identical_strings(self):
        assert sequence_similarity("abc", "abc") == 1.0

    def test_disjoint_strings(self):
        assert sequence_similarity("abc", "xyz") == 0.0

    def test_both_empty(self):
        assert sequence_similarity("", "") == 1.0

    def test_known_value(self):
        # common multiset chars of "abcd"/"abxd" = a,b,d -> 2*3/8
        assert sequence_similarity("abcd", "abxd") == pytest.approx(0.75)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        sim = sequence_similarity(a, b)
        assert 0.0 <= sim <= 1.0

    @given(short_text, short_text)
    def test_symmetric(self, a, b):
        assert sequence_similarity(a, b) == pytest.approx(sequence_similarity(b, a))

    @given(short_text)
    def test_self_similarity_is_one(self, a):
        assert sequence_similarity(a, a) == 1.0
