"""Unit tests for tokenisers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text import char_tokens, symbolic_signature, word_tokens


class TestCharTokens:
    def test_basic(self):
        assert char_tokens("ab1") == ["a", "b", "1"]

    def test_empty(self):
        assert char_tokens("") == []


class TestWordTokens:
    def test_splits_on_punctuation(self):
        assert word_tokens("Pass w/ Conditions") == ["pass", "w", "conditions"]

    def test_lowercases(self):
        assert word_tokens("Chicago IL") == ["chicago", "il"]

    def test_alphanumeric_kept_together(self):
        assert word_tokens("scip-inf-4") == ["scip", "inf", "4"]

    def test_empty(self):
        assert word_tokens("") == []
        assert word_tokens("---") == []


class TestSymbolicSignature:
    def test_mixed(self):
        assert symbolic_signature("60612-A") == "NNNNNSC"

    def test_letters(self):
        assert symbolic_signature("abc") == "CCC"

    def test_empty(self):
        assert symbolic_signature("") == ""

    @given(st.text(max_size=50))
    def test_length_preserved(self, value):
        assert len(symbolic_signature(value)) == len(value)

    @given(st.text(max_size=50))
    def test_alphabet(self, value):
        assert set(symbolic_signature(value)) <= {"C", "N", "S"}
