"""Tests for the shared utilities (RNG plumbing, timing, statistics)."""

import time

import numpy as np
import pytest

from repro.utils import Timer, as_generator, spawn_generators
from repro.utils.stats import normalized_mutual_information


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_yields_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(as_generator(np.int64(7)), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count_and_independence(self):
        gens = spawn_generators(0, 3)
        assert len(gens) == 3
        draws = [g.integers(0, 10**9) for g in gens]
        assert len(set(draws)) == 3  # astronomically unlikely to collide

    def test_reproducible_from_parent_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(5, 4)]
        b = [g.integers(0, 10**9) for g in spawn_generators(5, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestNormalizedMutualInformation:
    def test_perfect_dependence(self):
        col = [str(i % 4) for i in range(40)]
        assert normalized_mutual_information(col, col) == pytest.approx(1.0)

    def test_independence_near_zero(self):
        rng = np.random.default_rng(0)
        a = [str(int(x)) for x in rng.integers(0, 2, 2000)]
        b = [str(int(x)) for x in rng.integers(0, 2, 2000)]
        assert normalized_mutual_information(a, b) < 0.05

    def test_constant_column_zero(self):
        assert normalized_mutual_information(["x"] * 10, ["a", "b"] * 5) == 0.0

    def test_bias_correction_reduces_spurious_nmi(self):
        """Two random high-cardinality columns: raw NMI is inflated, the
        bias-corrected value collapses toward zero."""
        rng = np.random.default_rng(1)
        a = [f"a{int(x)}" for x in rng.integers(0, 80, 200)]
        b = [f"b{int(x)}" for x in rng.integers(0, 80, 200)]
        raw = normalized_mutual_information(a, b)
        corrected = normalized_mutual_information(a, b, bias_corrected=True)
        assert corrected < raw
        assert corrected < 0.1

    def test_bias_correction_keeps_true_dependence(self):
        col_a = [str(i % 8) for i in range(400)]
        col_b = [str((i % 8) // 2) for i in range(400)]
        assert normalized_mutual_information(col_a, col_b, bias_corrected=True) > 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(["a"], ["a", "b"])
